"""Graph lowering: fused kernels and flat register-slot programs.

The paper's performance claim (§4.3, Table 3) is that once speculative
assumptions are burned in, a JANUS graph should run at symbolic-framework
speed — "the only residual cost is checking the assumptions".  The
node-walking :class:`~repro.graph.executor.GraphExecutor` gets most of
the way there but still pays per-node Python dispatch: a tuple unpack, a
kind-string compare, and one call frame per op.  This module is the
ROADMAP "graph lowering" item that removes the remainder, mirroring the
``full_rewrite → ProgramSpec → CompiledRunner`` lowering pipeline of
modern tensor compilers:

1. **Elementwise fusion** (:class:`~repro.graph.passes.ElementwiseFusion`
   drives, :func:`fused_kernel_opdef` here generates the kernels):
   chains of pure elementwise ops collapse into one generated-source
   numpy closure, registered in :mod:`linecache` so tracebacks and
   profilers can see the fused body.  One instruction now covers what
   used to be N.

2. **Linearization** (:class:`LoweredExecutor`): every SSA value already
   has a preallocated register slot in the executor's flat ``values``
   list; lowering additionally converts every *instruction* into a bare
   ``fn(values, run_state)`` closure, so the run loop is
   ``for fn in program: fn(values, run_state)`` — no dict environment,
   no per-node dispatch, no interpreter frame between ops.

3. **Guard preamble**: the argument assumptions the graph was
   specialized under (placeholder dtype/shape specs) are prepended as
   slot-checked closures that raise
   :class:`~repro.errors.AssumptionFailed` before any kernel runs, so a
   lowered program keeps the transactional no-partial-state property of
   §4.2.3 even when driven directly (bypassing the api-level prechecks).

Lowering is best-effort by design: any construct the linearizer does not
recognize raises :class:`LoweringBailout`, the caller counts it under
``lowering.bailout.<reason>``, and execution falls back to the proven
node-walking executor.  Correctness never depends on lowering.

Fusion boundary rule: only *top-level* graphs are fused.  Nested
:class:`~repro.graph.core.GraphFunction` bodies (cond/while/invoke) are
reused across regenerations via the fragment cache and may be
re-differentiated by autodiff — fused OpDefs carry no ``grad_fn``, so
fusing them would poison those reuses.  Nested bodies still get the
flat-closure treatment (step 2) through
:func:`_lowered_function_executor`.

Paper correspondence: this module is the execution half of §4.3's
amortization argument and the reproduction's answer to Table 3's
residual JANUS-vs-symbolic gap (the ROADMAP "lower optimized graphs
past the Python interpreter" item): §4.2.3's transactional all-or-
nothing state commit is preserved verbatim (the lowered program shares
the node-walking executor's ``RunState`` deferred-writeback machinery),
and the guard preamble keeps §4.2's fail-before-any-effect property
for directly driven programs.  See docs/lowering.md for the full
design and measurements.
"""

import itertools
import linecache
import threading

import numpy as np

from ..errors import AssumptionFailed, ExecutionError
from ..observability import COUNTERS, METRICS, TRACER
from ..tensor import PyRef
from ..ops.registry import OpDef
from .executor import (RunState, _externalize, _flush_memo,
                       _function_executor, _internalize, _invoke_memo_key)

import time


class LoweringBailout(Exception):
    """Raised when a graph contains a construct lowering cannot handle.

    ``reason`` is a short dotted token suitable for a counter suffix
    (``lowering.bailout.<reason>``).
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


# -- fused kernel generation -------------------------------------------------

_FUSED_COUNTER = itertools.count()

#: Compiled code objects keyed by generated source text.  The same op
#: chain with the same wiring generates byte-identical source (kernels
#: and attrs are reached through namespace bindings, not literals), and
#: chains repeat heavily — unrolled RNN cells, per-topology TreeNN
#: regenerations — so caching ``compile()`` output cuts the dominant
#: cost of fusing a recompile-heavy workload.  Bounded crudely: cleared
#: when it outgrows _CODE_CACHE_MAX distinct shapes.  Guarded by a lock:
#: background recompiles can fuse concurrently, and the clear-then-store
#: sequence must not interleave.
_CODE_CACHE = {}
_CODE_CACHE_MAX = 512
_CODE_CACHE_LOCK = threading.Lock()


def fused_kernel_opdef(members, ext_index):
    """Generate one numpy kernel replaying ``members`` in order.

    ``members`` is the fusion group in topological order (last member is
    the group root whose output survives); ``ext_index`` maps external
    input edges ``(id(node), index)`` to the fused node's input
    positions.  Returns ``(op_def, source_name, uid)`` where ``op_def``
    is a fresh single-output :class:`~repro.ops.registry.OpDef` and
    ``source_name`` is the linecache-registered filename of the
    generated source.

    The generated body coerces every intermediate exactly like
    ``GraphExecutor._make_op_closure`` coerces op results
    (``r if type(r) is ndarray else asarray(r)``), so a fused chain is
    bit-for-bit identical to running the member kernels node by node.
    """
    uid = next(_FUSED_COUNTER)
    params = ["x%d" % i for i in range(len(ext_index))]
    lines = ["def _fused(attrs, %s):" % ", ".join(params)]
    namespace = {"_nd": np.ndarray, "_as": np.asarray}
    local = {}
    for i, node in enumerate(members):
        kname, aname = "_k%d" % i, "_a%d" % i
        namespace[kname] = node.op_def.kernel
        namespace[aname] = node.attrs
        args = []
        for inp in node.inputs:
            edge = (id(inp.node), inp.index)
            name = local.get(edge)
            args.append(name if name is not None
                        else "x%d" % ext_index[edge])
        lines.append("    v%d = %s(%s, %s)" % (i, kname, aname,
                                               ", ".join(args)))
        lines.append("    if v%d.__class__ is not _nd: v%d = _as(v%d)"
                     % (i, i, i))
        local[(id(node), 0)] = "v%d" % i
    lines.append("    return v%d" % (len(members) - 1))
    source = "\n".join(lines) + "\n"
    with _CODE_CACHE_LOCK:
        cached = _CODE_CACHE.get(source)
        if cached is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
                _CODE_CACHE.clear()
            source_name = "<janus-fused-%d>" % uid
            linecache.cache[source_name] = (len(source), None,
                                            source.splitlines(True),
                                            source_name)
            cached = (compile(source, source_name, "exec"), source_name)
            _CODE_CACHE[source] = cached
    code, source_name = cached
    exec(code, namespace)

    root_out = members[-1].outputs[0]
    spec = (root_out.shape, root_out.dtype)

    def shape_fn(attrs, in_shapes, in_dtypes, _spec=spec):
        return [_spec]

    return OpDef("fused", kernel=namespace["_fused"],
                 shape_fn=shape_fn), source_name, uid


def fuse_graph(graph):
    """Run elementwise fusion on a top-level graph; returns ops fused.

    Must only be called on graphs that will never be differentiated
    again (see the fusion boundary rule in the module docstring).
    """
    from .passes import ElementwiseFusion
    fusion = ElementwiseFusion()
    fusion.run(graph)
    return fusion.fused_ops


# -- instruction lowering ----------------------------------------------------


def _lower_var_assign(instr):
    _, variable, in_slot, out_slot = instr

    def run(values, run_state):
        value = values[in_slot]
        run_state.var_local[variable] = value
        values[out_slot] = value
    return run


def _lower_py_get(instr):
    # Dynamic-receiver heap read: the object arrives on an input edge.
    _, kind, dyn_slot, key, check, out_slot = instr
    is_attr = kind == "attr"

    def run(values, run_state, perf=time.perf_counter):
        ref = values[dyn_slot]
        if not isinstance(ref, PyRef):
            raise ExecutionError("py_get on non-PyRef input")
        obj = ref.obj
        local_key = (id(obj), kind, key)
        raw = run_state.py_local.get(local_key)
        if raw is None:
            raw = run_state.py_read_cache.get(local_key)
            if raw is None:
                raw = _internalize(getattr(obj, key) if is_attr
                                   else obj[key])
                if check is not None:
                    if METRICS.enabled:
                        guard_start = perf()
                        try:
                            check(raw)
                        finally:
                            METRICS.observe("guard.check",
                                            perf() - guard_start)
                    else:
                        check(raw)
                run_state.py_read_cache[local_key] = raw
        values[out_slot] = raw
    return run


def _lower_py_set(executor, instr):
    _, kind, static_obj, dyn_slot, key, value_slot, out_slot = instr
    # Shares the twin executor's registry so commit's transitive object
    # collection sees receivers first met at run time.
    py_objects = executor._py_objects

    def run(values, run_state):
        obj = static_obj if static_obj is not None else values[dyn_slot].obj
        run_state.py_local[(id(obj), kind, key)] = values[value_slot]
        py_objects[id(obj)] = obj
        values[out_slot] = PyRef(obj)
    return run


def _lower_py_call(instr):
    _, fn, in_slots, out_slots = instr
    single = out_slots[0] if len(out_slots) == 1 else None

    def run(values, run_state):
        result = fn(*[_externalize(values[s]) for s in in_slots])
        # An arbitrary Python call may mutate the heap: cached reads are
        # now stale (matches GraphExecutor._execute).
        run_state.py_read_cache.clear()
        if single is not None:
            values[single] = _internalize(result)
        else:
            for slot, r in zip(out_slots, result):
                values[slot] = _internalize(r)
    return run


def _lower_invoke(executor, instr):
    _, node, in_slots, out_slots = instr
    func = node.func
    barrier = executor.tensor_write_barrier

    def run(values, run_state):
        args = [values[s] for s in in_slots]
        memo_key = _invoke_memo_key(func, args)
        if memo_key is not None:
            cached = run_state.invoke_memo.get(memo_key)
            if cached is not None:
                for slot, r in zip(out_slots, cached):
                    values[slot] = r
                return
        sub = _lowered_function_executor(func, barrier)
        results = sub.run(args, run_state)
        if memo_key is not None:
            run_state.invoke_memo[memo_key] = results
        for slot, r in zip(out_slots, results):
            values[slot] = r
    return run


def _lower_cond(executor, instr):
    _, node, in_slots, out_slots = instr
    branches = node.branches
    barrier = executor.tensor_write_barrier
    pred_slot = in_slots[0]
    arg_slots = in_slots[1:]

    def run(values, run_state):
        branch = branches["true" if bool(np.all(values[pred_slot]))
                          else "false"]
        sub = _lowered_function_executor(branch, barrier)
        results = sub.run([values[s] for s in arg_slots], run_state)
        for slot, r in zip(out_slots, results):
            values[slot] = r
    return run


def _lower_while(executor, instr):
    _, node, in_slots, out_slots = instr
    cond_func = node.attrs["cond_func"]
    body_func = node.attrs["body_func"]
    record_grad = bool(node.attrs.get("record_grad"))
    max_iters = node.attrs.get("max_iterations", 1_000_000)
    barrier = executor.tensor_write_barrier

    def run(values, run_state):
        cond_exec = _lowered_function_executor(cond_func, barrier)
        body_exec = _lowered_function_executor(body_func, barrier)
        state = [values[s] for s in in_slots]
        record = [] if record_grad else None
        iteration = 0
        while True:
            keep_going = cond_exec.run(state, run_state)[0]
            if not bool(np.all(keep_going)):
                break
            if record is not None:
                record.append(list(state))
            state = body_exec.run(state, run_state)
            iteration += 1
            if iteration > max_iters:
                raise ExecutionError("while_loop exceeded %d iterations"
                                     % max_iters)
        if record is not None:
            run_state.while_records.setdefault(node, []).append(record)
        for slot, value in zip(out_slots, state):
            values[slot] = value
    return run


def _lower_while_grad(executor, instr):
    _, node, in_slots, out_slots = instr
    forward = node.attrs["forward_node"]
    body_grad_func = node.attrs["body_grad_func"]
    grad_var_count = node.attrs["grad_var_count"]
    float_mask = node.attrs["float_mask"]
    n_float = sum(float_mask)
    barrier = executor.tensor_write_barrier

    def run(values, run_state):
        stack = run_state.while_records.get(forward)
        if not stack:
            raise ExecutionError("while_grad has no recorded iterations")
        record = stack.pop()
        body_grad = _lowered_function_executor(body_grad_func, barrier)
        state_grads = [values[s] for s in in_slots]
        var_totals = [None] * grad_var_count
        for iteration_state in reversed(record):
            results = body_grad.run(list(iteration_state) + state_grads,
                                    run_state)
            state_grads = results[:n_float]
            for i, g in enumerate(results[n_float:]):
                var_totals[i] = g if var_totals[i] is None \
                    else var_totals[i] + g
        outputs = list(state_grads) + [
            g if g is not None else np.zeros(1, np.float32)
            for g in var_totals]
        for slot, value in zip(out_slots, outputs):
            values[slot] = value
    return run


def _lower_instruction(executor, instr):
    """One tagged executor instruction → one bare closure (or bail out)."""
    kind = instr[0]
    if kind == "closure":
        return instr[1]
    if kind == "var_assign":
        return _lower_var_assign(instr)
    if kind == "py_get":
        return _lower_py_get(instr)
    if kind == "py_set":
        return _lower_py_set(executor, instr)
    if kind == "py_call":
        return _lower_py_call(instr)
    if kind == "invoke":
        return _lower_invoke(executor, instr)
    if kind == "cond":
        return _lower_cond(executor, instr)
    if kind == "while":
        return _lower_while(executor, instr)
    if kind == "while_grad":
        return _lower_while_grad(executor, instr)
    raise LoweringBailout("unsupported_op.%s" % (kind,))


# -- guard preamble ----------------------------------------------------------


def _build_preamble(executor):
    """Slot-checked argument guards derived from placeholder specs.

    One closure per tensor placeholder, validating that the bound feed
    is an ndarray of the specialized dtype whose shape matches the
    (possibly partial) specialized shape.  PyRef placeholders
    (``dtype is None``) carry no tensor assumption and are skipped.
    """
    ndarray = np.ndarray
    checks = []
    for node in executor.graph.placeholders:
        out = node.outputs[0]
        if out.dtype is None:
            continue
        slot = executor._placeholder_slots[node.attrs["ph_name"]]
        np_dtype = out.dtype.np_dtype
        shape_obj = out.shape if out.shape.dims is not None else None
        name = node.debug_name

        def check(values, run_state=None, slot=slot, np_dtype=np_dtype,
                  shape_obj=shape_obj, name=name, ndarray=ndarray):
            arr = values[slot]
            if arr.__class__ is not ndarray:
                raise AssumptionFailed(
                    "lowered feed %s: expected a tensor, got %s"
                    % (name, type(arr).__name__), site=name, observed=arr)
            if arr.dtype != np_dtype:
                raise AssumptionFailed(
                    "lowered feed %s: dtype %s != specialized %s"
                    % (name, arr.dtype, np_dtype), site=name, observed=arr)
            if shape_obj is not None \
                    and not shape_obj.matches_value(arr.shape):
                raise AssumptionFailed(
                    "lowered feed %s: shape %s violates assumption %s"
                    % (name, arr.shape, shape_obj), site=name,
                    observed=arr)
        checks.append(check)
    return checks


# -- the lowered program -----------------------------------------------------


class LoweredExecutor:
    """A flat register-slot program compiled from a node-walking executor.

    Wraps (never replaces) a sequential
    :class:`~repro.graph.executor.GraphExecutor`: slot assignment,
    feed order, output slots and the commit machinery are all reused
    from the twin, so the two executors are interchangeable — same
    ``run(feeds, run_state)`` contract, same results, same deferred
    state-update transaction.  What changes is the hot loop: every
    instruction is a pre-bound ``fn(values, run_state)`` closure and the
    loop body is a single call, with the per-instruction kind dispatch
    of ``GraphExecutor._execute`` done once at lowering time instead of
    once per run.
    """

    __slots__ = ("executor", "graph", "preamble", "_program", "_labels",
                 "_slot_count", "_ph_slot_order", "_output_slots")

    def __init__(self, executor, preamble=True):
        if executor.parallel:
            # The level-parallel schedule dispatches through the pool;
            # keep it on the node-walking twin (+PARL beats flat-loop
            # gains when real cores are available).
            raise LoweringBailout("parallel_schedule")
        self.executor = executor
        self.graph = executor.graph
        self._program = [_lower_instruction(executor, instr)
                         for instr in executor._instructions]
        self._labels = executor._instr_labels
        self._slot_count = executor._slot_count
        self._ph_slot_order = executor._ph_slot_order
        self._output_slots = executor._output_slots
        self.preamble = _build_preamble(executor) if preamble else []

    @property
    def instruction_count(self):
        return len(self._program)

    def run(self, feeds=(), run_state=None):
        """Execute the lowered program (same contract as GraphExecutor)."""
        top_level = run_state is None
        if top_level:
            run_state = RunState()
        run_start = time.perf_counter() \
            if (top_level and (TRACER.level or METRICS.enabled)) else 0.0
        values = [None] * self._slot_count
        ph_slots = self._ph_slot_order
        if len(feeds) != len(ph_slots):
            raise ExecutionError("graph %s expects %d feeds, got %d"
                                 % (self.graph.name, len(ph_slots),
                                    len(feeds)))
        for slot, value in zip(ph_slots, feeds):
            values[slot] = value if type(value) is np.ndarray \
                else _internalize(value)
        for check in self.preamble:
            check(values)

        if TRACER.level >= 2:
            perf = time.perf_counter
            for fn, (op_name, debug_name) in zip(self._program,
                                                 self._labels):
                start = perf()
                fn(values, run_state)
                TRACER.complete("op", op_name, start, perf() - start,
                                level=2, node=debug_name,
                                graph=self.graph.name, lowered=True)
        else:
            for fn in self._program:
                fn(values, run_state)

        outputs = [values[s] for s in self._output_slots]
        if top_level:
            run_state.commit(self.executor._py_objects_transitive())
            run_state.stats["nodes_executed"] += len(self._program)
            _flush_memo(run_state)
            if TRACER.level:
                TRACER.complete("op", "run:%s" % self.graph.name,
                                run_start,
                                time.perf_counter() - run_start,
                                instructions=len(self._program),
                                lowered=True)
            if METRICS.enabled and run_start:
                METRICS.observe("graph.run",
                                time.perf_counter() - run_start)
        return outputs

    def __repr__(self):
        return "LoweredProgram(%s, %d instructions, %d guards)" % (
            self.graph.name, len(self._program), len(self.preamble))


#: Exported alias: the artifact name used by docs and CompiledGraph.
LoweredProgram = LoweredExecutor


def _lowered_function_executor(func, tensor_write_barrier=True):
    """Lowered executor for a nested GraphFunction, cached; may fall back.

    Builds on top of the cached node-walking nested executor (so both
    views share one schedule) and caches alongside it in
    ``func.graph._executor_cache`` — graph mutation clears that cache,
    invalidating both views together.  Nested bodies are linearized but
    *not* fused (see the module docstring) and carry no preamble: their
    inputs come from already-validated slots, not user feeds.  On
    bailout the node-walking executor itself is cached under the
    lowered key, so the reason is counted once, not once per call.
    """
    base = _function_executor(func, tensor_write_barrier)
    cache = func.graph._executor_cache
    cache_key = "lowered" if tensor_write_barrier else "lowered-nobarrier"
    sub = cache.get(cache_key)
    if sub is None:
        try:
            sub = LoweredExecutor(base, preamble=False)
        except LoweringBailout as exc:
            COUNTERS.inc("lowering.bailout.%s" % exc.reason)
            sub = base
        cache[cache_key] = sub
    return sub


def lower_executor(executor, preamble=True):
    """Lower a compiled executor into a :class:`LoweredExecutor`.

    Raises :class:`LoweringBailout` when the schedule cannot be lowered
    (the caller counts the reason and keeps the node-walking executor).
    """
    return LoweredExecutor(executor, preamble=preamble)

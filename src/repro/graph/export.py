"""Graph export utilities: Graphviz DOT rendering and text summaries.

A generated graph is also a debugging artifact; ``to_dot`` renders it
(with nested function bodies as clusters) so users can inspect what the
speculative generator produced — which assertions guard which regions,
where the deferred heap accesses sit, and how control-flow bodies nest.
"""

from .core import Graph

#: fill colors by node role (Graphviz X11 names).
_NODE_STYLE = {
    "placeholder": ("ellipse", "lightblue"),
    "constant": ("box", "gray90"),
    "var_read": ("box", "palegreen"),
    "var_assign": ("box", "darkseagreen"),
    "py_get_attr": ("box", "khaki"),
    "py_set_attr": ("box", "gold"),
    "py_get_subscr": ("box", "khaki"),
    "py_set_subscr": ("box", "gold"),
    "assert": ("octagon", "salmon"),
    "cond": ("diamond", "plum"),
    "while_loop": ("diamond", "orchid"),
    "while_grad": ("diamond", "thistle"),
    "invoke": ("component", "lightpink"),
}


def _node_label(node):
    label = node.op_name
    if node.op_name == "var_read" and node.variable is not None:
        label = "read %s" % node.variable.name
    elif node.op_name == "var_assign" and node.variable is not None:
        label = "assign %s" % node.variable.name
    elif node.op_name.startswith("py_"):
        key = node.attrs.get("name", node.attrs.get("key", ""))
        label = "%s[%s]" % (node.op_name, key)
    elif node.op_name == "invoke" and node.func is not None:
        label = "invoke %s" % node.func.name
    elif node.op_name == "placeholder":
        label = "input %s" % node.attrs.get("ph_name", "")
    return label.replace('"', "'")


def to_dot(graph, name=None, max_nodes=400, include_nested=True):
    """Render a Graph as Graphviz DOT text."""
    lines = ["digraph %s {" % _dot_id(name or graph.name),
             "  rankdir=TB;",
             "  node [fontsize=10];"]
    _emit_graph(graph, lines, prefix="n", max_nodes=max_nodes,
                include_nested=include_nested, depth=0, seen=set())
    lines.append("}")
    return "\n".join(lines)


def _dot_id(text):
    return "".join(c if c.isalnum() else "_" for c in str(text))


def _emit_graph(graph, lines, prefix, max_nodes, include_nested, depth,
                seen):
    if id(graph) in seen or depth > 3:
        return
    seen.add(id(graph))
    ids = {}
    for i, node in enumerate(graph.nodes[:max_nodes]):
        node_id = "%s_%d" % (prefix, node.id)
        ids[id(node)] = node_id
        shape, color = _NODE_STYLE.get(node.op_name, ("box", "white"))
        lines.append('  %s [label="%s", shape=%s, style=filled, '
                     'fillcolor=%s];'
                     % (node_id, _node_label(node), shape, color))
    for node in graph.nodes[:max_nodes]:
        dst = ids[id(node)]
        for inp in node.inputs:
            src = ids.get(id(inp.node))
            if src is not None:
                lines.append("  %s -> %s;" % (src, dst))
        for ctrl in node.control_inputs:
            src = ids.get(id(ctrl))
            if src is not None:
                lines.append('  %s -> %s [style=dashed, color=gray];'
                             % (src, dst))
    if len(graph.nodes) > max_nodes:
        lines.append('  %s_more [label="... %d more nodes", shape=plain];'
                     % (prefix, len(graph.nodes) - max_nodes))
    if not include_nested:
        return
    cluster = 0
    for node in graph.nodes[:max_nodes]:
        for func in node._nested_functions():
            if func is None or func.graph is None or \
                    id(func.graph) in seen:
                continue
            cluster += 1
            sub_prefix = "%s_c%d" % (prefix, cluster)
            lines.append("  subgraph cluster_%s {" % sub_prefix)
            lines.append('    label="%s";' % _dot_id(func.name))
            lines.append("    style=dashed;")
            _emit_graph(func.graph, lines, sub_prefix, max_nodes,
                        include_nested, depth + 1, seen)
            lines.append("  }")


def node_census(graph, recurse=True, _seen=None):
    """op_name -> count over a graph (and optionally nested bodies)."""
    if _seen is None:
        _seen = set()
    if id(graph) in _seen:
        return {}
    _seen.add(id(graph))
    census = {}
    for node in graph.nodes:
        census[node.op_name] = census.get(node.op_name, 0) + 1
        if recurse:
            for func in node._nested_functions():
                if func is not None and func.graph is not None:
                    for op, n in node_census(func.graph, True,
                                             _seen).items():
                        census[op] = census.get(op, 0) + n
    return census


def save_dot(graph, path, **kwargs):
    """Write DOT text to a file; render with `dot -Tsvg path -o out.svg`."""
    text = to_dot(graph, **kwargs)
    with open(path, "w") as fh:
        fh.write(text)
    return path

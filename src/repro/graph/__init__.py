"""Symbolic dataflow graphs: IR, builder, optimizer, autodiff, executor."""

from .core import Graph, Node, NodeOutput, GraphFunction, collect_variables
from .builder import GraphBuilder
from .executor import GraphExecutor, RunState
from .passes import (AnalysisContext, PassManager, DeadCodeElimination,
                     CommonSubexpressionElimination, ConstantFolding,
                     ArithmeticSimplification, DEFAULT_PASSES)
from . import autodiff
from . import control_primitives
from . import export

__all__ = [
    "Graph", "Node", "NodeOutput", "GraphFunction", "collect_variables",
    "GraphBuilder", "GraphExecutor", "RunState",
    "AnalysisContext", "PassManager", "DeadCodeElimination",
    "CommonSubexpressionElimination",
    "ConstantFolding", "ArithmeticSimplification", "DEFAULT_PASSES",
    "autodiff", "control_primitives", "export",
]

"""Graph optimization passes (the paper's post-processor, section 3.1).

These are the whole-graph optimizations that symbolic execution enables
and imperative execution forfeits: dead-code elimination, common
subexpression elimination, constant folding, and arithmetic
simplification.  Speculative specialization (section 4.2.2) is what makes
them bite — once profiled shapes and stable values are burned into the
graph as constants, folding and simplification cascade.

:class:`ElementwiseFusion` is the lowering-stage entry point (paper
§4.3's "executing the symbolic graph with decent performance", ROADMAP
"graph lowering" item): it is *not* part of :data:`DEFAULT_PASSES`
because it erases per-op node structure (fused nodes carry no
``grad_fn`` and cannot be re-differentiated), so it runs only on
top-level graphs immediately before executor compilation — see
:mod:`repro.graph.lowering` for the stage that invokes it.

Paper correspondence: DCE/CSE/folding/simplification are §3.1's
"various compiler optimizations" that motivate symbolic execution;
their leverage comes from §4.2.2's specialization burning profiled
values in as foldable constants.  :class:`ElementwiseFusion` belongs
to §4.3/Table 3 (graph execution performance) and is documented in
docs/lowering.md.
"""

import time

import numpy as np

from ..observability import COUNTERS, TRACER
from ..tensor import TensorValue
from .core import Graph


class AnalysisContext:
    """Shared per-round graph analyses for a :class:`PassManager` run.

    Every structural pass needs a topological order (and DCE a liveness
    set), but within one round most passes observe the *same* graph: the
    order only changes when a pass actually mutates the structure.  The
    context computes each analysis lazily, hands the cached result to
    every consumer, and is invalidated by the manager only when a pass
    reports a mutation — so a steady-state round performs zero
    ``topological_order()`` recomputations after the first.

    The cached order is additionally keyed to ``graph.version`` so a
    structural change that slips past a pass's changed-report (e.g. a
    helper adding nodes) can never serve a stale order.
    """

    __slots__ = ("graph", "_topo", "_topo_version", "_live",
                 "_live_version", "computes", "reuses")

    def __init__(self, graph):
        self.graph = graph
        self._topo = None
        self._topo_version = -1
        self._live = None
        self._live_version = -1
        self.computes = 0
        self.reuses = 0

    def topological_order(self):
        version = self.graph.version
        if self._topo is None or self._topo_version != version:
            self._topo = self.graph.topological_order()
            self._topo_version = version
            self.computes += 1
            COUNTERS.inc("passes.topo_computed")
        else:
            self.reuses += 1
            COUNTERS.inc("passes.topo_reused")
        return self._topo

    def live_nodes(self):
        version = self.graph.version
        if self._live is None or self._live_version != version:
            self._live = self.graph.live_nodes()
            self._live_version = version
        return self._live

    def invalidate(self):
        """Drop every cached analysis (a pass mutated the graph)."""
        self._topo = None
        self._live = None


def _order_of(graph, ctx):
    """Topological order via the shared context when one is available."""
    if ctx is not None:
        return ctx.topological_order()
    return graph.topological_order()


class Pass:
    """Base class: a transformation applied in place to a Graph.

    ``run`` takes an optional :class:`AnalysisContext`; passes that
    consume whole-graph analyses read them through the context so one
    computation serves the whole round.  Called without a context (tests,
    ad-hoc single-pass use) they fall back to computing their own.
    """

    name = "pass"

    def run(self, graph, ctx=None):
        """Apply the pass; returns True when the graph changed."""
        raise NotImplementedError


def _remap_inputs(graph, replacements):
    """Redirect every consumer edge according to ``replacements``.

    ``replacements`` maps ``(id(node), index) -> NodeOutput``.
    """
    if not replacements:
        return False

    def lookup(out):
        seen = set()
        while (id(out.node), out.index) in replacements:
            if (id(out.node), out.index) in seen:
                break
            seen.add((id(out.node), out.index))
            out = replacements[(id(out.node), out.index)]
        return out

    changed = False
    for node in graph.nodes:
        for i, inp in enumerate(node.inputs):
            new = lookup(inp)
            if new is not inp:
                node.inputs[i] = new
                changed = True
    for i, out in enumerate(graph.outputs):
        new = lookup(out)
        if new is not out:
            graph.outputs[i] = new
            changed = True
    return changed


class DeadCodeElimination(Pass):
    """Remove nodes that neither feed outputs nor have side effects."""

    name = "dce"

    def run(self, graph, ctx=None):
        live = ctx.live_nodes() if ctx is not None else graph.live_nodes()
        dead = [n for n in graph.nodes if n not in live]
        if not dead:
            return False
        graph.remove_nodes(dead)
        return True


class CommonSubexpressionElimination(Pass):
    """Deduplicate structurally identical pure nodes."""

    name = "cse"

    def run(self, graph, ctx=None):
        canonical = {}
        replacements = {}
        for node in _order_of(graph, ctx):
            # Resolve this node's inputs through pending replacements so
            # chained duplicates collapse in one run.
            for i, inp in enumerate(node.inputs):
                rep = replacements.get((id(inp.node), inp.index))
                if rep is not None:
                    node.inputs[i] = rep
            sig = node.signature()
            if sig is None:
                if node.op_name == "constant" and \
                        isinstance(node.constant_value, TensorValue):
                    value = node.constant_value
                    if value.array.nbytes <= 1 << 16:
                        sig = ("constant", value.dtype.name,
                               value.array.shape, value.array.tobytes())
                if sig is None:
                    continue
            existing = canonical.get(sig)
            if existing is None:
                canonical[sig] = node
                continue
            for out, channel in zip(node.outputs, existing.outputs):
                replacements[(id(out.node), out.index)] = channel
        _remap_inputs(graph, replacements)
        if replacements:
            DeadCodeElimination().run(graph)
        return bool(replacements)


class ConstantFolding(Pass):
    """Evaluate pure nodes whose inputs are all constants at build time."""

    name = "constant_folding"

    # Refuse to materialize folded constants bigger than this (bytes).
    MAX_BYTES = 1 << 20

    def run(self, graph, ctx=None):
        replacements = {}
        changed = False
        for node in _order_of(graph, ctx):
            for i, inp in enumerate(node.inputs):
                rep = replacements.get((id(inp.node), inp.index))
                if rep is not None:
                    node.inputs[i] = rep
            if node.op_def is None or node.op_def.stateful:
                continue
            if node.control_inputs:
                continue
            if not node.inputs and node.op_name not in ("fill", "range"):
                continue
            const_inputs = []
            foldable = True
            for inp in node.inputs:
                src = inp.node
                if src.op_name != "constant" or \
                        not isinstance(src.constant_value, TensorValue):
                    foldable = False
                    break
                const_inputs.append(src.constant_value.array)
            if not foldable:
                continue
            try:
                result = node.op_def.kernel(node.attrs, *const_inputs)
            except Exception:
                continue
            results = result if isinstance(result, tuple) else (result,)
            arrays = [np.asarray(r) for r in results]
            if sum(a.nbytes for a in arrays) > self.MAX_BYTES:
                continue
            for out, arr in zip(node.outputs, arrays):
                const = graph.new_node("constant")
                const.constant_value = TensorValue.of(arr)
                new_out = const.add_output(const.constant_value.shape,
                                           const.constant_value.dtype)
                replacements[(id(node), out.index)] = new_out
            changed = True
        if _remap_inputs(graph, replacements) or changed:
            DeadCodeElimination().run(graph)
            return True
        return False


def _scalar_constant(node_output):
    node = node_output.node
    if node.op_name != "constant":
        return None
    value = node.constant_value
    if not isinstance(value, TensorValue) or value.array.size != 1:
        return None
    return float(value.array.reshape(()))


class ArithmeticSimplification(Pass):
    """Strength-reduce trivial arithmetic: x+0, x*1, x/1, x**1, x-0."""

    name = "arithmetic_simplify"

    def run(self, graph, ctx=None):
        replacements = {}
        for node in _order_of(graph, ctx):
            for i, inp in enumerate(node.inputs):
                rep = replacements.get((id(inp.node), inp.index))
                if rep is not None:
                    node.inputs[i] = rep
            target = self._simplify(node)
            if target is not None:
                replacements[(id(node), 0)] = target
        changed = _remap_inputs(graph, replacements)
        if changed:
            DeadCodeElimination().run(graph)
        return changed

    def _simplify(self, node):
        op = node.op_name
        if op not in ("add", "sub", "mul", "div", "pow"):
            return None
        a, b = node.inputs
        out = node.outputs[0]
        ca, cb = _scalar_constant(a), _scalar_constant(b)

        def keeps(x):
            # Only rewrite when the surviving operand already has the
            # result's shape and dtype (no silent broadcasting change).
            return (x.dtype is out.dtype
                    and x.shape.is_fully_known and out.shape.is_fully_known
                    and x.shape.dims == out.shape.dims)

        if op == "add":
            if cb == 0.0 and keeps(a):
                return a
            if ca == 0.0 and keeps(b):
                return b
        elif op == "sub":
            if cb == 0.0 and keeps(a):
                return a
        elif op == "mul":
            if cb == 1.0 and keeps(a):
                return a
            if ca == 1.0 and keeps(b):
                return b
        elif op == "div":
            if cb == 1.0 and keeps(a):
                return a
        elif op == "pow":
            if cb == 1.0 and keeps(a):
                return a
        return None


#: Pure, shape-preserving-or-broadcasting ops whose kernels compose into
#: a single fused closure without changing results: every member reads
#: only its direct inputs, writes one output, and touches no state.
#: Reductions, matmuls, reshapes and gathers are deliberately absent —
#: fusing across them would change nothing (they dominate their own
#: cost) while complicating the group-legality argument.
ELEMENTWISE_OPS = frozenset([
    # arithmetic
    "add", "sub", "mul", "div", "floordiv", "mod", "pow",
    "maximum", "minimum", "neg", "abs", "sign", "square",
    # transcendental / activations
    "exp", "log", "log1p", "expm1", "sqrt", "tanh", "floor",
    "sigmoid", "relu", "leaky_relu", "clip", "softplus", "elu", "gelu",
    # comparisons and logic
    "equal", "not_equal", "less", "less_equal",
    "greater", "greater_equal",
    "logical_and", "logical_or", "logical_not",
    # select / dtype / passthrough
    "where", "cast", "identity", "stop_gradient",
    "zeros_like", "ones_like",
])


class ElementwiseFusion(Pass):
    """Collapse chains of elementwise ops into single fused kernels.

    Greedy reverse-topological grouping: each ungrouped elementwise node
    becomes a group root, then absorbs producers so long as the producer
    is (a) itself a fusable single-output op, (b) consumed *only* inside
    the group, (c) not a graph output, and (d) free of control-dependency
    edges in either direction.  Conditions (b)+(c) guarantee the
    intermediate value is unobservable, so erasing it cannot change any
    result; condition (d) plus producer-only growth guarantees the
    replacement node cannot create a cycle.  Each group is replaced by
    one ``fused`` node whose :class:`~repro.ops.registry.OpDef` kernel is
    a generated-source closure replaying the member kernels in order
    (see :func:`repro.graph.lowering.fused_kernel_opdef`).

    Not in :data:`DEFAULT_PASSES`: fused OpDefs have no ``grad_fn``, so
    this pass must only run on graphs that will never be differentiated
    again — the top-level graph right before executor compilation.
    Nested :class:`~repro.graph.core.GraphFunction` bodies are reused
    across regenerations (fragment cache) and may be re-differentiated,
    so the lowering stage leaves them unfused.
    """

    name = "elementwise_fusion"

    #: Minimum member count for a group to be worth a generated kernel.
    MIN_GROUP = 2

    def __init__(self):
        self.fused_ops = 0       # member ops collapsed in the last run
        self.fused_kernels = 0   # fused nodes emitted in the last run

    def run(self, graph, ctx=None):
        from .lowering import fused_kernel_opdef
        self.fused_ops = 0
        self.fused_kernels = 0
        order = _order_of(graph, ctx)
        consumers, control_users = graph.consumer_info()
        out_edges = {(id(o.node), o.index) for o in graph.outputs}

        def fusable(node):
            return (node.op_name in ELEMENTWISE_OPS
                    and node.op_def is not None
                    and not node.op_def.stateful
                    and len(node.outputs) == 1
                    and not node.control_inputs
                    and id(node) not in control_users)

        grouped = set()
        groups = []   # (root, member set)
        for node in reversed(order):
            if node in grouped or not fusable(node):
                continue
            group = {node}
            frontier = [node]
            while frontier:
                member = frontier.pop()
                for inp in member.inputs:
                    prod = inp.node
                    if prod in group or prod in grouped \
                            or not fusable(prod):
                        continue
                    edge = (id(prod), 0)
                    if edge in out_edges:
                        continue
                    if any(c not in group
                           for c in consumers.get(edge, ())):
                        continue
                    group.add(prod)
                    frontier.append(prod)
            if len(group) >= self.MIN_GROUP:
                groups.append((node, group))
                grouped |= group

        if not groups:
            return False

        position = {node: i for i, node in enumerate(order)}
        replacements = {}
        for root, group in groups:
            members = sorted(group, key=position.__getitem__)
            # External inputs, deduplicated in first-use order; these
            # become the fused node's input edges / kernel parameters.
            ext = []
            ext_index = {}
            for member in members:
                for inp in member.inputs:
                    if inp.node in group:
                        continue
                    edge = (id(inp.node), inp.index)
                    if edge not in ext_index:
                        ext_index[edge] = len(ext)
                        ext.append(inp)
            op_def, source_name, uid = fused_kernel_opdef(members, ext_index)
            fused = graph.new_node(
                "fused", op_def=op_def,
                attrs={"fused_id": uid,
                       "fused_ops": "|".join(m.op_name for m in members),
                       "fused_src": source_name},
                inputs=ext,
                name="fused_%s" % root.debug_name)
            root_out = root.outputs[0]
            new_out = fused.add_output(root_out.shape, root_out.dtype)
            replacements[(id(root), 0)] = new_out
            self.fused_ops += len(members)
        self.fused_kernels = len(groups)
        _remap_inputs(graph, replacements)
        graph.remove_nodes(grouped)
        COUNTERS.inc("lowering.fused_ops", self.fused_ops)
        COUNTERS.inc("lowering.fused_kernels", self.fused_kernels)
        return True


DEFAULT_PASSES = (
    CommonSubexpressionElimination,
    ConstantFolding,
    ArithmeticSimplification,
    DeadCodeElimination,
)


class PassManager:
    """Runs passes to a fixed point (bounded rounds)."""

    def __init__(self, passes=None, max_rounds=4):
        self.passes = [p() for p in (passes or DEFAULT_PASSES)]
        self.max_rounds = max_rounds

    def run(self, graph, recurse=True, _seen_graphs=None):
        """Optimize a graph (and, optionally, nested function bodies)."""
        if _seen_graphs is None:
            _seen_graphs = set()
        if id(graph) in _seen_graphs:
            return graph
        _seen_graphs.add(id(graph))
        stamp = (graph.version, tuple(type(p) for p in self.passes))
        if getattr(graph, "_opt_stamp", None) == stamp:
            # Already optimized by this pipeline and structurally
            # untouched since (any mutation bumps graph.version).  This
            # is what scopes passes to dirty fragments on incremental
            # regeneration: spliced sub-graphs keep their stamp — and
            # their warm executor cache, which we deliberately do not
            # clear here.
            COUNTERS.inc("passes.graphs_skipped")
            return graph
        ctx = AnalysisContext(graph)
        for round_index in range(self.max_rounds):
            changed = False
            for pass_ in self.passes:
                if TRACER.level:
                    before = len(graph.nodes)
                    start = time.perf_counter()
                    pass_changed = bool(pass_.run(graph, ctx))
                    TRACER.complete(
                        "pass", pass_.name, start,
                        time.perf_counter() - start, graph=graph.name,
                        round=round_index, nodes_before=before,
                        nodes_after=len(graph.nodes),
                        changed=pass_changed)
                else:
                    pass_changed = bool(pass_.run(graph, ctx))
                if pass_changed:
                    ctx.invalidate()
                changed |= pass_changed
            if not changed:
                break
        if recurse:
            for node in list(graph.nodes):
                for func in node._nested_functions():
                    if func is None or func.graph is None:
                        continue
                    self.run(func.graph, recurse=True,
                             _seen_graphs=_seen_graphs)
        graph._executor_cache.clear()
        # Stamp with the post-run version: a later run of the same
        # pipeline over the unchanged graph is a no-op and skips.
        graph._opt_stamp = (graph.version, stamp[1])
        return graph

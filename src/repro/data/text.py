"""Synthetic token streams standing in for PTB and the 1B-word corpus.

Tokens are drawn from a first-order Markov chain with a Zipfian marginal,
so language models have real transition structure to learn (perplexity
falls measurably within a few epochs) while staying fully synthetic.
"""

import numpy as np


class TokenStream:
    """A corpus of token ids with batched BPTT iteration."""

    def __init__(self, tokens, vocab_size):
        self.tokens = tokens
        self.vocab_size = vocab_size

    def bptt_batches(self, batch_size, seq_len):
        """Yield (inputs, targets) of shape (seq_len, batch_size).

        Matches the classic PTB producer: the stream is folded into
        ``batch_size`` parallel lanes and sliced along time.
        """
        n = self.tokens.size // batch_size
        lanes = self.tokens[:n * batch_size].reshape(batch_size, n).T
        for start in range(0, n - 1 - seq_len, seq_len):
            x = lanes[start:start + seq_len]
            y = lanes[start + 1:start + 1 + seq_len]
            yield (np.ascontiguousarray(x, dtype=np.int64),
                   np.ascontiguousarray(y, dtype=np.int64))


def markov_corpus(n_tokens=20000, vocab_size=100, branching=4, seed=0):
    """A Zipf-marginal Markov chain corpus."""
    rng = np.random.default_rng(seed)
    # Each token has a small set of likely successors.
    successors = rng.integers(0, vocab_size, size=(vocab_size, branching))
    weights = rng.dirichlet(np.ones(branching) * 0.4, size=vocab_size)
    tokens = np.empty(n_tokens, np.int64)
    state = int(rng.integers(0, vocab_size))
    for i in range(n_tokens):
        tokens[i] = state
        nxt = rng.choice(branching, p=weights[state])
        state = int(successors[state, nxt])
    return TokenStream(tokens, vocab_size)


def ptb_like(seed=0):
    """PTB stand-in: ~10k vocab in the paper, scaled for CPU."""
    return markov_corpus(n_tokens=20000, vocab_size=200, seed=seed)


def one_billion_like(seed=0):
    """1B-word-benchmark stand-in: bigger vocab and stream (LM model)."""
    return markov_corpus(n_tokens=60000, vocab_size=800, seed=seed)

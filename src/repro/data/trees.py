"""Synthetic sentiment trees standing in for SST (TreeRNN / TreeLSTM).

Binary parse trees over a small vocabulary where leaf words carry a
polarity and internal nodes compose polarities (with occasional negation
words that flip their sibling subtree) — the compositional structure SST
models learn, without the corpus.
"""

import numpy as np


class TreeNode:
    """A binary sentiment-tree node.

    Leaves hold a ``word`` id; internal nodes hold children.  Every node
    carries an integer ``label`` (0 = negative, 1 = positive) like SST's
    binary setting.  The recursive models read these fields through
    Python attribute access — the PyGetAttrOp path of paper figure 5.
    """

    __slots__ = ("word", "left", "right", "label")

    def __init__(self, word=None, left=None, right=None, label=0):
        self.word = word
        self.left = left
        self.right = right
        self.label = label

    @property
    def is_leaf(self):
        return self.left is None

    def size(self):
        if self.is_leaf:
            return 1
        return 1 + self.left.size() + self.right.size()

    def depth(self):
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())


#: word-id space: [0, NEG_WORDS) negative, [NEG..2NEG) positive, last flip
def sst_like(n_trees=120, vocab_size=60, min_leaves=3, max_leaves=9,
             negation_rate=0.12, seed=0):
    """Generate labelled binary sentiment trees."""
    rng = np.random.default_rng(seed)
    half = vocab_size // 2
    trees = []
    for _ in range(n_trees):
        n_leaves = int(rng.integers(min_leaves, max_leaves + 1))
        trees.append(_build_tree(n_leaves, half, vocab_size, negation_rate,
                                 rng))
    return trees


def _word_polarity(word, half):
    return 1 if word >= half else 0


def _build_tree(n_leaves, half, vocab_size, negation_rate, rng):
    if n_leaves == 1:
        word = int(rng.integers(0, 2 * half))
        return TreeNode(word=word, label=_word_polarity(word, half))
    n_left = int(rng.integers(1, n_leaves))
    left = _build_tree(n_left, half, vocab_size, negation_rate, rng)
    right = _build_tree(n_leaves - n_left, half, vocab_size, negation_rate,
                        rng)
    # Composition: majority polarity of the leaf words under this node,
    # occasionally flipped (negation) — learnable sentiment structure.
    positives = _count_positive_leaves(left) + _count_positive_leaves(right)
    label = 1 if positives * 2 >= n_leaves else 0
    if rng.random() < negation_rate:
        label = 1 - label
    return TreeNode(left=left, right=right, label=label)


def _count_positive_leaves(node):
    if node.is_leaf:
        return node.label
    return (_count_positive_leaves(node.left)
            + _count_positive_leaves(node.right))


def train_test_split(trees, test_fraction=0.25, seed=0):
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(trees))
    n_test = int(len(trees) * test_fraction)
    test_idx = set(order[:n_test].tolist())
    train = [t for i, t in enumerate(trees) if i not in test_idx]
    test = [t for i, t in enumerate(trees) if i in test_idx]
    return train, test

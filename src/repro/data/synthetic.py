"""Synthetic image datasets standing in for MNIST / ImageNet / Facades.

The paper's evaluation measures throughput and convergence dynamics; the
datasets only matter through their tensor shapes, class structure, and
(for convergence plots) learnability.  Each generator therefore produces
class-conditional images with enough signal that the models demonstrably
learn, at shapes matching the originals (optionally scaled down for CPU).
"""

import numpy as np


class ImageDataset:
    """A finite, shuffled, batched set of (image, label) pairs."""

    def __init__(self, images, labels, batch_size, seed=0,
                 drop_remainder=False):
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.drop_remainder = drop_remainder
        self._rng = np.random.default_rng(seed)

    @property
    def num_examples(self):
        return self.images.shape[0]

    def batches(self, shuffle=True):
        """Yield (images, labels) batches; a final short batch exercises
        the varying-shape path (paper table 2 note on dynamic types)."""
        order = np.arange(self.num_examples)
        if shuffle:
            self._rng.shuffle(order)
        step = self.batch_size
        for start in range(0, self.num_examples, step):
            idx = order[start:start + step]
            if self.drop_remainder and idx.size < step:
                return
            yield self.images[idx], self.labels[idx]

    def __iter__(self):
        return self.batches()


def _class_conditional_images(n, height, width, channels, num_classes,
                              rng, noise=0.35):
    """Images whose spatial frequency content encodes the class."""
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    ys = np.linspace(0, np.pi * 2, height, dtype=np.float32)
    xs = np.linspace(0, np.pi * 2, width, dtype=np.float32)
    grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
    images = np.empty((n, height, width, channels), np.float32)
    for c in range(num_classes):
        mask = labels == c
        count = int(mask.sum())
        if count == 0:
            continue
        freq = 1.0 + c
        phase = rng.uniform(0, np.pi, size=(count, 1, 1, 1)).astype(
            np.float32)
        base = np.sin(freq * grid_x + 0.5 * freq * grid_y)
        base = base[None, :, :, None].astype(np.float32)
        images[mask] = base + phase * 0.1
    images += rng.normal(0, noise, size=images.shape).astype(np.float32)
    return images, labels


def mnist_like(n=512, batch_size=50, image_size=28, num_classes=10, seed=0):
    """MNIST stand-in: 28x28x1 grayscale, 10 classes (LeNet, AN)."""
    rng = np.random.default_rng(seed)
    images, labels = _class_conditional_images(n, image_size, image_size, 1,
                                               num_classes, rng)
    return ImageDataset(images, labels, batch_size, seed=seed)


def imagenet_like(n=256, batch_size=64, image_size=32, num_classes=100,
                  seed=0):
    """ImageNet stand-in (scaled): RGB, many classes (ResNet/Inception).

    The real evaluation uses 224x224; image_size defaults to 32 so CPU
    benchmarks finish, which preserves the coarse-kernel cost profile.
    """
    rng = np.random.default_rng(seed)
    images, labels = _class_conditional_images(
        n, image_size, image_size, 3, num_classes, rng)
    return ImageDataset(images, labels, batch_size, seed=seed)


def facades_like(n=64, batch_size=1, image_size=32, seed=0):
    """Facades stand-in for pix2pix: paired (edges, photo) images.

    The 'photo' is a deterministic nonlinear recoloring of the 'edge'
    layout, so a conditional generator has real structure to learn.
    """
    rng = np.random.default_rng(seed)
    edges = rng.uniform(-1, 1, size=(n, image_size, image_size, 1))
    edges = np.sign(edges).astype(np.float32)
    photo = np.tanh(np.cumsum(edges, axis=1) * 0.3).astype(np.float32)
    photo = np.repeat(photo, 3, axis=3)
    return PairedImageDataset(edges.astype(np.float32), photo, batch_size,
                              seed=seed)


class PairedImageDataset:
    """Paired image translation data (pix2pix)."""

    def __init__(self, inputs, targets, batch_size, seed=0):
        self.inputs = inputs
        self.targets = targets
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)

    @property
    def num_examples(self):
        return self.inputs.shape[0]

    def batches(self, shuffle=True):
        order = np.arange(self.num_examples)
        if shuffle:
            self._rng.shuffle(order)
        for start in range(0, self.num_examples, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.inputs[idx], self.targets[idx]

    def __iter__(self):
        return self.batches()

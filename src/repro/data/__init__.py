"""Synthetic datasets matching the shapes of the paper's workloads."""

from .synthetic import (ImageDataset, PairedImageDataset, mnist_like,
                        imagenet_like, facades_like)
from .text import TokenStream, markov_corpus, ptb_like, one_billion_like
from .trees import TreeNode, sst_like, train_test_split

__all__ = [
    "ImageDataset", "PairedImageDataset", "mnist_like", "imagenet_like",
    "facades_like",
    "TokenStream", "markov_corpus", "ptb_like", "one_billion_like",
    "TreeNode", "sst_like", "train_test_split",
]

"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError):
    """An operation received operands with incompatible shapes."""


class DTypeError(ReproError):
    """An operation received operands with incompatible dtypes."""


class GraphError(ReproError):
    """The symbolic graph is malformed (cycles, dangling inputs, ...)."""


class ExecutionError(ReproError):
    """The graph executor failed while running a compiled schedule."""


class AssumptionFailed(ReproError):
    """A speculative assumption encoded as an AssertOp was violated.

    Raised by the graph executor *before* any deferred state update is
    applied, so catching it and falling back to imperative execution is
    always safe (paper section 3.2, all-or-nothing state updates).
    """

    def __init__(self, message, site=None, observed=None):
        super().__init__(message)
        self.site = site
        self.observed = observed


class NotConvertible(ReproError):
    """The program uses a Python feature with no graph representation.

    Functions raising this during generation are permanently routed to the
    imperative executor (paper section 4.3, figure 2 (C)).
    """

    def __init__(self, message, feature=None, lineno=None):
        super().__init__(message)
        self.feature = feature
        #: Source line (in the coordinates of the function being
        #: converted) of the offending construct, when the generator can
        #: attribute one.  The co-execution planner uses it to split the
        #: function at the failing statement (docs/coexecution.md).
        self.lineno = lineno


class FallbackRequested(ReproError):
    """Internal signal: abandon graph execution and rerun imperatively."""

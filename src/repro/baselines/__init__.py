"""Baseline converters (trace-based defun analogue, Table 1)."""

from .tracing import TracedFunction, TracingLimitation, trace_function

__all__ = ["TracedFunction", "TracingLimitation", "trace_function"]

"""Trace-based graph conversion — the ``defun`` baseline (Table 1, row 3).

``trace_function`` executes the Python program *once* with concrete
inputs while shadow-recording every dispatched op into a symbolic graph.
This is how ``tf.contrib.eager.defun``, ``torch.jit.trace``, and MXNet
Gluon convert programs, and it inherits their characteristic unsafety,
which the paper's evaluation (section 6.2) demonstrates:

* Python control flow is *burned in*: the traced branch direction and
  loop trip count are frozen, silently — a later call that would take the
  other branch still runs the traced one (the ResNet50 batch-norm bug).
* Global/heap state reads are captured as constants: state passed across
  calls through object attributes is frozen at its traced value (the LM
  state-passing bug), and heap writes are simply dropped.
* Recursion cannot be traced into a finite graph (the TreeLSTM failure).

Variables *are* parameterized (reads become var_read nodes, optimizer
updates become deferred assigns), matching defun's handling of model
parameters.
"""

import numpy as np

from ..errors import ReproError
from ..observability import COUNTERS, TRACER
from ..graph.builder import GraphBuilder
from ..graph.executor import GraphExecutor
from ..graph.core import NodeOutput
from ..graph.passes import PassManager
from ..imperative.eager import Tensor, EagerContext
from ..imperative.variable import Variable
from ..imperative import tape as tape_module
from ..tensor import TensorValue


class TracingLimitation(ReproError):
    """The trace hit something a trace-based converter cannot express.

    ``kind`` names the limitation class (``"op_budget"`` or
    ``"recursion"``) and doubles as the counter suffix:
    ``baseline.tracing_limitation.<kind>``.
    """

    def __init__(self, message, kind="other"):
        super().__init__(message)
        self.kind = kind
        COUNTERS.inc("baseline.tracing_limitation.%s" % kind)


class _ShadowContext(EagerContext):
    """Eager execution that also records a shadow symbolic graph."""

    def __init__(self, builder, max_trace_ops=100000):
        super().__init__()
        self.builder = builder
        self._shadow = {}        # id(eager Tensor) -> NodeOutput
        self._keepalive = []
        self.ops_traced = 0
        self.max_trace_ops = max_trace_ops

    def shadow_of(self, tensor):
        node = self._shadow.get(id(tensor))
        if node is None:
            # A value the graph has not seen: capture as constant.  This
            # is exactly the defun behaviour that freezes heap state.
            node = self.builder.constant(tensor.value)
            self._remember(tensor, node)
        return node

    def _remember(self, tensor, node):
        self._shadow[id(tensor)] = node
        self._keepalive.append(tensor)

    def convert(self, value, dtype=None):
        if isinstance(value, Variable):
            tensor = Tensor(value.storage)
            tape_module.record_variable_read(value, tensor)
            self._remember(tensor, self.builder.read_variable(value))
            return tensor
        return super().convert(value, dtype=dtype)

    def assign_variable(self, variable, value):
        tensor = super().convert(value)
        self.builder.assign_variable(variable, self.shadow_of(tensor))
        variable._assign_raw(tensor)
        return tensor

    def execute(self, op_def, inputs, attrs):
        self.ops_traced += 1
        if self.ops_traced > self.max_trace_ops:
            raise TracingLimitation(
                "trace exceeded %d operations — unbounded (e.g. "
                "recursive) programs cannot be traced into a finite "
                "graph (paper section 6.2, TreeLSTM case)"
                % self.max_trace_ops, kind="op_budget")
        outputs = super().execute(op_def, inputs, attrs)
        shadow_inputs = [self.shadow_of(t) for t in inputs]
        shadow_out = self.builder.execute(op_def, shadow_inputs, attrs)
        if isinstance(outputs, tuple):
            for t, s in zip(outputs, shadow_out):
                self._remember(t, s)
        else:
            self._remember(outputs, shadow_out)
        return outputs


class TracedFunction:
    """A function frozen into a graph from one concrete execution."""

    def __init__(self, func, optimizer=None, optimize_graph=True,
                 max_trace_ops=100000):
        self.func = func
        self.optimizer = optimizer
        self.optimize_graph = optimize_graph
        self.max_trace_ops = max_trace_ops
        self._generated = None
        self._executor = None

    def __call__(self, *args):
        if self._generated is None:
            # The tracing run *is* the first execution (defun semantics):
            # its eager side effects already happened.
            result = self._trace(args)
            if isinstance(result, (tuple, list)):
                return tuple(result)
            return result
        flat = self._executor.run(list(args))
        from ..graph.executor import _externalize
        outs = [_externalize(v) for v in flat]
        return outs[0] if len(outs) == 1 else tuple(outs)

    def _trace(self, args):
        name = getattr(self.func, "__name__", "fn")
        with TRACER.span("baseline", "trace:%s" % name):
            return self._trace_inner(args, name)

    def _trace_inner(self, args, name):
        builder = GraphBuilder(name="trace_%s" % name)
        ctx = _ShadowContext(builder, max_trace_ops=self.max_trace_ops)
        arg_tensors = []
        with builder:
            # Build placeholders, then run the program eagerly with the
            # shadow recorder installed.
            pass
        eager_args = []
        for i, arg in enumerate(args):
            tensor = Tensor(TensorValue.of(_raw(arg)))
            with builder:
                ph = builder.placeholder("arg_%d" % i,
                                         shape=tensor.value.shape,
                                         dtype=tensor.value.dtype)
            ctx._remember(tensor, ph)
            eager_args.append(tensor)
        import sys
        old_limit = sys.getrecursionlimit()
        with ctx:
            if self.optimizer is not None:
                with tape_module.GradientTape() as tape:
                    result = self._call_traced(eager_args)
                target = result[0] if isinstance(result, (tuple, list)) \
                    else result
                variables = list({id(v): v
                                  for v, _ in tape._var_reads}.values())
                grads = tape.gradient(target, variables)
                self.optimizer.apply_gradients(
                    [(g, v) for g, v in zip(grads, variables)
                     if g is not None])
            else:
                result = self._call_traced(eager_args)
        with builder:
            outputs = result if isinstance(result, (tuple, list)) \
                else [result]
            builder.mark_outputs([ctx.shadow_of(t) for t in outputs])
        if self.optimize_graph:
            PassManager().run(builder.graph)
        COUNTERS.inc("baseline.ops_traced", ctx.ops_traced)
        if TRACER.level:
            TRACER.instant("baseline", "traced:%s" % name,
                           ops_traced=ctx.ops_traced,
                           nodes=len(builder.graph.nodes))
        self._generated = builder.graph
        self._executor = GraphExecutor(builder.graph)
        return result

    def _call_traced(self, eager_args):
        try:
            return self.func(*eager_args)
        except RecursionError as exc:
            raise TracingLimitation(
                "recursion cannot be traced into a finite graph "
                "(paper section 6.2, TreeLSTM case)",
                kind="recursion") from exc


def _raw(value):
    if isinstance(value, Tensor):
        return value.value
    return value


def trace_function(func, optimizer=None, **kwargs):
    """defun-like decorator: trace once, replay the frozen graph."""
    return TracedFunction(func, optimizer=optimizer, **kwargs)

"""Ring all-reduce: a real implementation plus an analytic cost model.

The paper integrates JANUS with Horovod, whose MPI collective operations
become graph nodes so communication overlaps with computation (section
5).  We cannot ship InfiniBand, so this module provides

* :func:`ring_allreduce` — an actual chunked ring all-reduce over
  in-process numpy buffers (reduce-scatter + all-gather, the Horovod/NCCL
  algorithm), used to keep simulated workers numerically in sync, and
* :class:`AllReduceCostModel` — the standard analytic time for that
  algorithm on a given interconnect, used by the scalability benchmark.
"""

import time

import numpy as np

from ..observability import COUNTERS, TRACER


def ring_allreduce(worker_arrays, average=True):
    """All-reduce a list of per-worker arrays with the ring algorithm.

    ``worker_arrays[w]`` is worker *w*'s buffer; all must share shape and
    dtype.  Returns the list of reduced buffers (one per worker — they
    are equal, but each worker owns its own copy, as in MPI).  The data
    movement follows the real algorithm: each worker splits its buffer
    into W chunks, runs W-1 reduce-scatter steps then W-1 all-gather
    steps, only ever exchanging single chunks with its ring neighbour.
    """
    workers = len(worker_arrays)
    COUNTERS.inc("distributed.allreduces")
    if workers == 1:
        return [worker_arrays[0].copy()]
    start = time.perf_counter() if TRACER.level else 0.0
    shape = worker_arrays[0].shape
    dtype = worker_arrays[0].dtype
    flat = [np.ascontiguousarray(a, dtype=np.float64).reshape(-1)
            for a in worker_arrays]
    n = flat[0].size
    bounds = np.linspace(0, n, workers + 1).astype(np.int64)

    def chunk(buf, idx):
        return buf[bounds[idx]:bounds[idx + 1]]

    # Reduce-scatter: after step s, worker w holds the partial sum of
    # chunk (w - s) from s+1 workers.
    for step in range(workers - 1):
        sends = [chunk(flat[w], (w - step) % workers).copy()
                 for w in range(workers)]
        for w in range(workers):
            src = (w - 1) % workers
            dst_chunk = (w - 1 - step) % workers
            chunk(flat[w], dst_chunk)[:] += sends[src]
    # All-gather: circulate each fully-reduced chunk around the ring.
    for step in range(workers - 1):
        sends = [chunk(flat[w], (w + 1 - step) % workers).copy()
                 for w in range(workers)]
        for w in range(workers):
            src = (w - 1) % workers
            dst_chunk = (w - step) % workers
            chunk(flat[w], dst_chunk)[:] = sends[src]
    scale = 1.0 / workers if average else 1.0
    results = [(buf * scale).reshape(shape).astype(dtype) for buf in flat]
    if TRACER.level:
        TRACER.complete("distributed", "ring_allreduce", start,
                        time.perf_counter() - start, workers=workers,
                        bytes=int(worker_arrays[0].nbytes),
                        average=average)
    return results


class AllReduceCostModel:
    """Analytic ring all-reduce time on a modelled interconnect.

    ``t = 2 (W-1) * latency + 2 (W-1)/W * bytes / bandwidth``

    Defaults approximate the paper's testbed: 100 Gbps InfiniBand between
    machines, NVLink-class bandwidth within a machine (6 GPUs each).
    """

    def __init__(self, inter_bandwidth_gbps=100.0, inter_latency_s=5e-6,
                 intra_bandwidth_gbps=300.0, intra_latency_s=1e-6,
                 gpus_per_machine=6):
        self.inter_bandwidth = inter_bandwidth_gbps * 1e9 / 8  # bytes/s
        self.inter_latency = inter_latency_s
        self.intra_bandwidth = intra_bandwidth_gbps * 1e9 / 8
        self.intra_latency = intra_latency_s
        self.gpus_per_machine = gpus_per_machine

    def allreduce_seconds(self, num_bytes, workers):
        if workers <= 1:
            return 0.0
        if workers <= self.gpus_per_machine:
            bandwidth, latency = self.intra_bandwidth, self.intra_latency
        else:
            # The ring crosses machines: the slowest link dominates.
            bandwidth, latency = self.inter_bandwidth, self.inter_latency
        steps = 2 * (workers - 1)
        volume = 2.0 * (workers - 1) / workers * num_bytes
        return steps * latency + volume / bandwidth

"""Simulated data-parallel cluster (substrate for paper figure 8).

The paper measures scalability on 6 machines x 6 GPUs.  Here a
:class:`DataParallelSimulator` measures one worker's *real* step time on
this machine, then applies the ring-allreduce cost model to predict the
multi-worker step time under two communication disciplines:

* graph execution (JANUS / symbolic): communication operations live in
  the dataflow graph, so gradient exchange overlaps the remaining
  backward computation — ``t = t_fwd + max(t_bwd, t_comm)``;
* imperative execution: gradients only exist after the tape finishes, so
  communication strictly follows computation — ``t = t_step + t_comm``.

This captures exactly the mechanism the paper credits for the gap in
figure 8 ("TensorFlow Eager does not scale well, due to its inability to
overlap computation and communication").
"""

import time

from ..observability import COUNTERS, TRACER
from .allreduce import AllReduceCostModel


class StepTiming:
    """Measured single-worker cost of one training step."""

    __slots__ = ("total_seconds", "backward_fraction", "grad_bytes",
                 "examples_per_step")

    def __init__(self, total_seconds, grad_bytes, examples_per_step,
                 backward_fraction=0.6):
        self.total_seconds = total_seconds
        self.grad_bytes = grad_bytes
        self.examples_per_step = examples_per_step
        #: Fraction of the step spent in backward ops whose gradient
        #: transfers can overlap (typical 2/3 split fwd:bwd).
        self.backward_fraction = backward_fraction


def measure_step(step_fn, args, warmup=2, iters=5, variables=None,
                 examples_per_step=1):
    """Time a step callable and size its gradient exchange."""
    for _ in range(warmup):
        step_fn(*args)
    start = time.perf_counter()
    for _ in range(iters):
        step_fn(*args)
    total = (time.perf_counter() - start) / iters
    grad_bytes = 0
    if variables:
        grad_bytes = sum(v.storage.array.nbytes for v in variables
                         if v.trainable)
    COUNTERS.inc("distributed.steps_measured")
    if TRACER.level:
        TRACER.complete("distributed", "measure_step", start,
                        time.perf_counter() - start, warmup=warmup,
                        iters=iters, step_ms=round(total * 1e3, 3),
                        grad_bytes=grad_bytes)
    return StepTiming(total, grad_bytes, examples_per_step)


class DataParallelSimulator:
    """Predicts multi-worker throughput from a measured single step."""

    def __init__(self, cost_model=None):
        self.cost_model = cost_model or AllReduceCostModel()

    def step_seconds(self, timing, workers, overlap):
        comm = self.cost_model.allreduce_seconds(timing.grad_bytes,
                                                 workers)
        if workers == 1:
            result = timing.total_seconds
        elif overlap:
            fwd = timing.total_seconds * (1 - timing.backward_fraction)
            bwd = timing.total_seconds * timing.backward_fraction
            result = fwd + max(bwd, comm)
        else:
            result = timing.total_seconds + comm
        if TRACER.level:
            TRACER.instant("distributed", "simulated_step",
                           workers=workers, overlap=overlap,
                           comm_ms=round(comm * 1e3, 4),
                           step_ms=round(result * 1e3, 4))
        return result

    def throughput(self, timing, workers, overlap):
        """Examples/second across the whole simulated cluster."""
        per_step = self.step_seconds(timing, workers, overlap)
        return workers * timing.examples_per_step / per_step

    def scale_factor(self, timing, workers, overlap):
        """Multi-GPU throughput / (single-GPU throughput x workers)."""
        single = self.throughput(timing, 1, overlap)
        multi = self.throughput(timing, workers, overlap)
        return multi / (single * workers)

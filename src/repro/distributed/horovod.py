"""Horovod-style distributed optimizer over in-process worker replicas.

The paper's integration (section 5) inserts AllReduce operations into the
generated graph so every worker applies the *averaged* gradients.  Here a
:class:`ReplicaGroup` holds W model replicas in one process;
:class:`DistributedOptimizer` wraps each replica's optimizer and routes
gradients through the real ring all-reduce before the update, so the
replicas provably stay synchronized — the numerical half of the
data-parallel story (timing is handled by the cluster simulator).
"""

import numpy as np

from ..nn.optim import Optimizer
from .allreduce import ring_allreduce


class DistributedOptimizer(Optimizer):
    """Wraps an optimizer; gradients are all-reduced before applying.

    All participating workers must call :meth:`apply_gradients` through
    the shared :class:`ReplicaGroup`, which batches the exchange.
    """

    def __init__(self, inner, group, rank):
        super().__init__(name="Distributed(%s)" % inner.name)
        self.inner = inner
        self.group = group
        self.rank = rank

    def apply_gradients(self, grads_and_vars):
        pairs = [(g, v) for g, v in grads_and_vars if g is not None]
        averaged = self.group.exchange(self.rank, pairs)
        self.inner.apply_gradients(averaged)


class ReplicaGroup:
    """Coordinates gradient exchange between in-process replicas."""

    def __init__(self, num_workers):
        self.num_workers = num_workers
        self._pending = {}

    def optimizer_for(self, rank, inner):
        return DistributedOptimizer(inner, self, rank)

    def exchange(self, rank, pairs):
        """Register one worker's gradients; average once all arrive.

        Synchronous semantics: workers are stepped round-robin by the
        driver, so the exchange buffers rank submissions and performs the
        ring all-reduce when the last worker of the step arrives.
        """
        self._pending[rank] = pairs
        if len(self._pending) < self.num_workers:
            # Defer: the driver applies updates after the barrier.
            return []
        all_pairs = [self._pending[r] for r in sorted(self._pending)]
        self._pending = {}
        n_grads = len(all_pairs[0])
        averaged_per_rank = [[] for _ in range(self.num_workers)]
        for gi in range(n_grads):
            buffers = [np.asarray(_to_array(all_pairs[r][gi][0]))
                       for r in range(self.num_workers)]
            reduced = ring_allreduce(buffers, average=True)
            for r in range(self.num_workers):
                averaged_per_rank[r].append(
                    (reduced[r], all_pairs[r][gi][1]))
        self._deferred = averaged_per_rank
        return averaged_per_rank[rank]

    def flush(self, optimizers):
        """Apply the deferred averaged updates for ranks 0..W-2."""
        deferred = getattr(self, "_deferred", None)
        if deferred is None:
            return
        for rank, opt in enumerate(optimizers):
            if rank == self.num_workers - 1:
                continue  # the last rank applied inside exchange()
            opt.inner.apply_gradients(deferred[rank])
        self._deferred = None


def _to_array(grad):
    from ..imperative.eager import Tensor
    if isinstance(grad, Tensor):
        return grad.value.array
    return grad

"""Simulated fleet warm start: N worker processes, one compile cache.

``python -m repro.distributed.warmstart`` launches a small fleet of
worker processes that all run the same JANUS-decorated training-style
step function against a **shared** on-disk compile cache
(:mod:`repro.janus.diskcache`).  The first worker starts cold — it pays
profiling, conversion, optimization, and lowering, then publishes the
artifact.  Every subsequent worker warm-starts: its first call probes
the disk tier, rebuilds the artifact, and reaches ``_run_graph`` with
zero profiling runs.  The printed summary is the fleet argument for
persistence: compile cost is paid once per (function, specialization,
config, version), not once per process.

Each worker reports its *time to first graph-hit* measured in-process
(interpreter startup excluded — that cost is identical either way), the
number of graphs it compiled itself, and its warm-start count.

Usage::

    python -m repro.distributed.warmstart --workers 4
    python -m repro.distributed.warmstart --workers 8 --json
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

__all__ = ["run_fleet", "main"]

#: Calls after which a worker gives up waiting for a graph hit.
_MAX_CALLS = 64


def _make_step():
    """Build the fleet's decorated step function (one per process)."""
    from .. import janus

    @janus.function
    def fleet_step(x, w):
        h = x
        for _ in range(8):
            h = h @ w
            h = h * 0.5 + x
        return h

    return fleet_step


def _worker_main(index):
    """Run inside each fleet process; prints one JSON result line."""
    import numpy as np

    step = _make_step()
    rng = np.random.RandomState(1234)     # same data fleet-wide
    x = rng.rand(16, 16).astype(np.float32)
    w = rng.rand(16, 16).astype(np.float32)
    start = time.perf_counter()
    first_graph_hit = None
    calls = 0
    checksum = None
    while calls < _MAX_CALLS:
        out = step(x, w)
        calls += 1
        if first_graph_hit is None and step.stats["graph_runs"] > 0:
            first_graph_hit = time.perf_counter() - start
            checksum = float(out.numpy().sum())
            break
    from ..observability import DISKCACHE
    print(json.dumps({
        "worker": index,
        "calls_to_first_graph_hit": calls,
        "time_to_first_graph_hit": first_graph_hit,
        "profiling_runs": step.stats["imperative_runs"],
        "graphs_compiled": step.stats["graphs_generated"],
        "warm_starts": step.stats["warm_starts"],
        "disk_hits": DISKCACHE.snapshot()["hits"],
        "checksum": checksum,
    }))
    return 0


def _spawn(index, cache_dir):
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = os.environ.copy()
    env["JANUS_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.distributed.warmstart",
         "--worker", str(index)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


def run_fleet(workers=4, cache_dir=None):
    """First worker cold, the rest warm (concurrently); returns results.

    The return dict carries per-worker records plus the headline
    ``cold_seconds`` / ``warm_seconds_mean`` / ``speedup`` numbers.
    """
    own_dir = cache_dir is None
    if own_dir:
        cache_dir = tempfile.mkdtemp(prefix="janus-fleet-")
    try:
        results = []
        # Worker 0 alone: the one cold compile the fleet ever pays.
        proc = _spawn(0, cache_dir)
        out, err = proc.communicate(timeout=300)
        if proc.returncode != 0:
            raise RuntimeError("cold worker failed:\n%s" % err)
        results.append(json.loads(out.strip().splitlines()[-1]))
        # The rest of the fleet starts concurrently against the
        # populated cache.
        procs = [_spawn(i, cache_dir) for i in range(1, workers)]
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            if proc.returncode != 0:
                raise RuntimeError("warm worker failed:\n%s" % err)
            results.append(json.loads(out.strip().splitlines()[-1]))
        cold = results[0]["time_to_first_graph_hit"]
        warm = [r["time_to_first_graph_hit"] for r in results[1:]]
        checksums = {r["checksum"] for r in results}
        return {
            "workers": workers,
            "cache_dir": cache_dir,
            "results": results,
            "cold_seconds": cold,
            "warm_seconds_mean": sum(warm) / len(warm) if warm else None,
            "speedup": (cold / (sum(warm) / len(warm)))
            if warm and cold else None,
            "outputs_identical": len(checksums) == 1,
        }
    finally:
        if own_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.warmstart",
        description="Simulated fleet sharing one persistent compile "
                    "cache: first worker compiles, the rest warm-start.")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--cache-dir", default=None,
                        help="shared cache directory (default: a "
                             "temporary one, removed afterwards)")
    parser.add_argument("--json", action="store_true",
                        help="print the raw result dict as JSON")
    parser.add_argument("--worker", type=int, default=None,
                        help=argparse.SUPPRESS)   # internal: fleet member
    args = parser.parse_args(argv)

    if args.worker is not None:
        return _worker_main(args.worker)

    summary = run_fleet(args.workers, args.cache_dir)
    if args.json:
        print(json.dumps(summary, indent=1))
        return 0
    print("fleet of %d workers, shared cache" % summary["workers"])
    for rec in summary["results"]:
        mode = "cold (compiled %d graph%s)" % (
            rec["graphs_compiled"],
            "s" if rec["graphs_compiled"] != 1 else "") \
            if rec["warm_starts"] == 0 else "warm start"
        print("  worker %d: first graph hit after %d call%s, %.1f ms "
              "(%d profiling runs) — %s"
              % (rec["worker"], rec["calls_to_first_graph_hit"],
                 "s" if rec["calls_to_first_graph_hit"] != 1 else "",
                 (rec["time_to_first_graph_hit"] or 0.0) * 1e3,
                 rec["profiling_runs"], mode))
    if summary["warm_seconds_mean"]:
        print("cold %.1f ms vs warm %.1f ms mean -> %.1fx faster "
              "time-to-first-graph-hit; outputs identical: %s"
              % (summary["cold_seconds"] * 1e3,
                 summary["warm_seconds_mean"] * 1e3,
                 summary["speedup"], summary["outputs_identical"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Simulated data-parallel training (ring all-reduce, cluster model)."""

from .allreduce import ring_allreduce, AllReduceCostModel
from .cluster import (StepTiming, measure_step, DataParallelSimulator)
from .horovod import DistributedOptimizer, ReplicaGroup

__all__ = [
    "ring_allreduce", "AllReduceCostModel",
    "StepTiming", "measure_step", "DataParallelSimulator",
    "DistributedOptimizer", "ReplicaGroup",
]

"""Simulated data-parallel training (ring all-reduce, cluster model)."""

from .allreduce import ring_allreduce, AllReduceCostModel
from .cluster import (StepTiming, measure_step, DataParallelSimulator)
from .horovod import DistributedOptimizer, ReplicaGroup

__all__ = [
    "ring_allreduce", "AllReduceCostModel",
    "StepTiming", "measure_step", "DataParallelSimulator",
    "DistributedOptimizer", "ReplicaGroup",
    "run_fleet",
]


def __getattr__(name):
    # Lazy: warmstart is also a __main__ entry point, and importing it
    # eagerly here would shadow the runpy execution of the submodule.
    if name == "run_fleet":
        from .warmstart import run_fleet
        return run_fleet
    raise AttributeError(name)

"""Concurrency primitives for the multi-tenant JANUS runtime.

The paper's serving story (§4.4) assumes the guarded-graph executor can
answer many callers while profiling and regeneration proceed in the
background.  Three primitives make that true for
:class:`~repro.janus.api.JanusFunction`:

* :class:`RWLock` — a writer-preferring read-write lock guarding each
  function's compiled-artifact slot.  Concurrent callers take the read
  side for the (cheap) lookup-and-precheck, pin the
  :class:`~repro.janus.compiled.CompiledGraph` they retrieved, and then
  execute it *outside* the lock — RCU-style, so a long graph run never
  blocks the swap and the swap never blocks warm callers.  The write
  side covers only the pointer transitions: retiring a failed entry and
  publishing a regenerated one.

* :class:`TicketTable` — per-signature single-flight tickets.  When an
  assumption fails under N concurrent callers, every one of them
  observes the failure, but exactly one wins the recompile ticket and
  triggers regeneration; the rest are served by the imperative fallback
  until the new artifact lands.  The same table collapses the cold-start
  stampede: N threads racing past the profiling phase produce one
  compile, not N.

* :func:`recompile_pool` — a small shared daemon thread pool that runs
  regenerations off the request path when
  ``JanusConfig.recompile_workers > 0``.  With the default (0 workers)
  the ticket winner compiles inline, which preserves the historical
  single-caller behaviour exactly.

All three are deliberately free of JANUS imports so every runtime layer
(cache, dispatch, serving) can use them without cycles.
"""

import os
import threading
from concurrent.futures import ThreadPoolExecutor


class RWLock:
    """A writer-preferring read-write lock.

    Many readers may hold the lock simultaneously; a writer holds it
    exclusively.  Pending writers block *new* readers (preference), so a
    steady stream of warm callers cannot starve an artifact swap.  Both
    sides are reentrant-free by design — the runtime's critical sections
    are a handful of dict operations, never nested.

    Use via the context-manager views::

        with lock.read():   ...   # shared
        with lock.write():  ...   # exclusive
    """

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- read side -----------------------------------------------------------

    def acquire_read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self):
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def read(self):
        return _RWView(self, write=False)

    # -- write side ----------------------------------------------------------

    def acquire_write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self):
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def write(self):
        return _RWView(self, write=True)


class _RWView:
    """Context-manager view over one side of an :class:`RWLock`."""

    __slots__ = ("_lock", "_write")

    def __init__(self, lock, write):
        self._lock = lock
        self._write = write

    def __enter__(self):
        if self._write:
            self._lock.acquire_write()
        else:
            self._lock.acquire_read()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._write:
            self._lock.release_write()
        else:
            self._lock.release_read()
        return False


class TicketTable:
    """Single-flight tickets keyed by call signature.

    ``claim(key)`` returns True for exactly one claimant until the
    matching ``release(key)``; every other claimant (and ``in_flight``)
    sees the ticket as taken.  The winner owns the regeneration for that
    signature; losers serve the imperative fallback — the paper's §4.3
    recovery path — instead of duplicating compile work or blocking.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = set()

    def claim(self, key):
        """Atomically claim the ticket for *key*; True iff we won it."""
        with self._lock:
            if key in self._inflight:
                return False
            self._inflight.add(key)
            return True

    def release(self, key):
        with self._lock:
            self._inflight.discard(key)

    def in_flight(self, key):
        with self._lock:
            return key in self._inflight

    def __len__(self):
        with self._lock:
            return len(self._inflight)


_POOL_LOCK = threading.Lock()
_POOL = None
_POOL_WORKERS = 0


def recompile_pool(workers):
    """The shared background-recompile pool, sized to *workers*.

    Lazily created; grows (never shrinks) to the largest request so
    functions with different ``recompile_workers`` settings share one
    pool.  Threads are daemonic — an interpreter exit never waits on a
    speculative rebuild.
    """
    global _POOL, _POOL_WORKERS
    workers = max(1, int(workers))
    with _POOL_LOCK:
        if _POOL is None or workers > _POOL_WORKERS:
            _POOL = ThreadPoolExecutor(
                max_workers=max(workers, min(4, (os.cpu_count() or 1))),
                thread_name_prefix="janus-recompile")
            _POOL_WORKERS = workers
        return _POOL

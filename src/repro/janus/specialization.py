"""The type/shape/value specialization lattice (paper figure 4).

Every profiled value — function arguments, heap reads, return values — is
summarized as a :class:`ValueSpec`.  Repeated observations are *merged*
down the lattice: an exact constant relaxes to a shaped tensor, a concrete
shape ``(4, 8)`` relaxes dimension-wise to ``(?, 8)``, and a rank mismatch
relaxes to a tensor of unknown shape.  Assumption failures at runtime
trigger the same merge against the offending value, so JANUS never
regenerates a graph for a shape family it has already generalized over.

Paper correspondence: this module is the *dynamic types* machinery of
§4.2.2 — the type/shape/value assumptions the speculative graph
generator (§4.1, :mod:`repro.janus.graphgen`) burns into specialized
graphs, the prechecks validated at cache retrieval, and the relaxation
(lattice join) performed after the §4.3 imperative fallback.  Every
genuine relaxation — a spec moving strictly down the lattice — emits a
``relax`` trace event (:mod:`repro.observability`) naming the old and
new points, so a trace shows exactly *which* assumption each fallback
cost.
"""

import sys
import threading
import weakref

import numpy as np

from ..imperative.eager import Tensor
from ..imperative.variable import Variable
from ..observability import TRACER
from ..tensor import TensorValue
from ..tensor.shape import Shape

# Spec kinds, ordered roughly top (most specific) to bottom.
CONST_TENSOR = "const_tensor"   # same numeric value every observation
TENSOR = "tensor"               # dtype + (possibly partial) shape
CONST_PY = "const_py"           # identical non-numeric Python value
CALLABLE = "callable"           # a function / method (by underlying func)
VARIABLE = "variable"           # a repro Variable (by identity)
PYOBJ = "pyobj"                 # arbitrary object, stable type
LIST = "list"                   # list/tuple of element specs
NONE = "none"                   # literal None
BOTTOM = "bottom"               # nothing can be assumed


class CallableRegistry:
    """Stable, non-reusable tokens for callables appearing in cache keys.

    Keying a cache signature by ``id(fn)`` alone is unsound: once the
    callable is garbage-collected, CPython may hand the same address to
    a brand-new function, silently matching a stale cache entry built
    for different code.  The registry instead assigns each distinct
    *live* callable a monotonically increasing token, tracking liveness
    with a weak reference — when the callable dies its slot is cleared,
    so a reallocated callable at a reused address always receives a
    fresh token and can never alias the old entry.

    Callables that do not support weak references (builtins, some
    C-implemented methods) are held strongly; they are module-lifetime
    objects, so pinning them cannot leak meaningfully.

    Token issuance is race-free under concurrent interning: two threads
    asking for the same live callable always receive the same token
    (double-checked insert under the registry lock).  Without that, the
    same function could appear in two cache signatures under two tokens
    and the graph cache would silently compile the entry twice — and
    never hit.  The fast path reads the slot without the lock (a dict
    probe is atomic); only the insert re-checks under the lock.  The
    lock is reentrant because creating a weak reference can trigger a
    garbage-collection pass that runs a *death callback* on this very
    thread while the lock is held — with a plain lock that is a
    self-deadlock.
    """

    def __init__(self):
        self._slots = {}      # id(fn) -> (weakref-or-strong-ref, token)
        self._next_token = 0
        self._lock = threading.RLock()

    @staticmethod
    def _live_token(slot, fn):
        """The slot's token if it still refers to *fn*, else None."""
        if slot is None:
            return None
        ref, token = slot
        target = ref() if isinstance(ref, weakref.ref) else ref
        return token if target is fn else None

    def token_for(self, fn):
        key = id(fn)
        # Lock-free fast path: a populated slot for a live callable is
        # immutable until that callable dies, so a hit needs no lock.
        token = self._live_token(self._slots.get(key), fn)
        if token is not None:
            return token
        with self._lock:
            # Double-check: another thread may have interned fn between
            # the unlocked probe and lock acquisition; issuing a second
            # token here is exactly the double-compile aliasing bug.
            token = self._live_token(self._slots.get(key), fn)
            if token is not None:
                return token
            # Slot absent, or address reuse beat the death callback:
            # issue a fresh token and overwrite.
            token = self._next_token
            self._next_token += 1
            try:
                ref = weakref.ref(fn, self._reaper(key))
            except TypeError:
                ref = fn
            self._slots[key] = (ref, token)
            return token

    def _reaper(self, key):
        def _on_death(dead_ref):
            with self._lock:
                slot = self._slots.get(key)
                # Only clear our own slot: the id may already belong to
                # a newly registered callable.
                if slot is not None and slot[0] is dead_ref:
                    del self._slots[key]
        return _on_death

    def __len__(self):
        return len(self._slots)


#: Process-wide registry backing CALLABLE signatures.
CALLABLE_REGISTRY = CallableRegistry()


class ValueSpec:
    """One point in the specialization lattice."""

    __slots__ = ("kind", "dtype", "shape", "value", "elements", "py_type",
                 "is_tuple", "source")

    def __init__(self, kind, dtype=None, shape=None, value=None,
                 elements=None, py_type=None, is_tuple=False, source=None):
        self.kind = kind
        self.dtype = dtype
        self.shape = shape
        self.value = value
        self.elements = elements
        self.py_type = py_type
        self.is_tuple = is_tuple
        #: For CONST_TENSOR specs observed from a Tensor/TensorValue: the
        #: originating TensorValue, so :func:`spec_digest` can use the
        #: write-barrier version stamp instead of hashing array content
        #: when the value is tracked (sealed buffer => content pinned).
        self.source = source

    # -- constructors ---------------------------------------------------------

    @classmethod
    def bottom(cls):
        return cls(BOTTOM)

    # -- queries ---------------------------------------------------------------

    @property
    def is_tensor_like(self):
        return self.kind in (CONST_TENSOR, TENSOR)

    def signature(self):
        """Hashable cache-key component: type-level info only.

        Two calls with the same signature may share a cache entry; shape
        and value assumptions within the entry are prechecked separately.
        """
        if self.kind in (CONST_TENSOR, TENSOR):
            rank = None if self.shape is None or self.shape.dims is None \
                else len(self.shape.dims)
            return ("T", self.dtype.name, rank)
        if self.kind == CONST_PY:
            try:
                hash(self.value)
            except TypeError:
                return ("P", type(self.value).__qualname__)
            return ("C", self.value)
        if self.kind == CALLABLE:
            # Registry token, not raw id(): a GC'd-then-reallocated
            # callable at the same address must not alias a cache entry.
            return ("F", CALLABLE_REGISTRY.token_for(self.value))
        if self.kind == VARIABLE:
            return ("V", self.value.uid)
        if self.kind == PYOBJ:
            return ("P", self.py_type.__qualname__)
        if self.kind == LIST:
            return ("L", self.is_tuple,
                    tuple(e.signature() for e in self.elements))
        if self.kind == NONE:
            return ("N",)
        return ("_",)

    def __getstate__(self):
        # ``source`` pins a live TensorValue so write-barrier digests can
        # use (identity, version); identity is meaningless in another
        # process, so persisted specs drop it and fall back to content
        # hashing on the next digest.
        state = {s: getattr(self, s) for s in self.__slots__}
        state["source"] = None
        return state

    def __setstate__(self, state):
        for s in self.__slots__:
            setattr(self, s, state.get(s))

    def __repr__(self):
        if self.kind == TENSOR:
            return "Spec(tensor %s %s)" % (self.dtype.name, self.shape)
        if self.kind == CONST_TENSOR:
            return "Spec(const tensor %s %s)" % (self.dtype.name, self.shape)
        if self.kind == LIST:
            return "Spec(%s of %d)" % ("tuple" if self.is_tuple else "list",
                                       len(self.elements))
        return "Spec(%s %r)" % (self.kind, self.value if self.value is not
                                None else self.py_type)


def observe(value):
    """Summarize a concrete runtime value as the most specific spec."""
    if value is None:
        return ValueSpec(NONE)
    if isinstance(value, Variable):
        return ValueSpec(VARIABLE, value=value)
    if isinstance(value, Tensor):
        tv = value.value
        return ValueSpec(CONST_TENSOR, dtype=tv.dtype, shape=tv.shape,
                         value=tv.array, source=tv)
    if isinstance(value, TensorValue):
        return ValueSpec(CONST_TENSOR, dtype=value.dtype, shape=value.shape,
                         value=value.array, source=value)
    if isinstance(value, np.ndarray):
        tv = TensorValue.of(value)
        return ValueSpec(CONST_TENSOR, dtype=tv.dtype, shape=tv.shape,
                         value=tv.array)
    if isinstance(value, (bool, int, float, np.bool_, np.integer,
                          np.floating)):
        tv = TensorValue.of(value if not isinstance(value, np.generic)
                            else value.item())
        return ValueSpec(CONST_TENSOR, dtype=tv.dtype, shape=tv.shape,
                         value=tv.array)
    if isinstance(value, str):
        return ValueSpec(CONST_PY, value=value)
    if callable(value) and not isinstance(value, type):
        target = getattr(value, "__func__", value)
        return ValueSpec(CALLABLE, value=target)
    if isinstance(value, (list, tuple)):
        return ValueSpec(LIST, elements=[observe(v) for v in value],
                         is_tuple=isinstance(value, tuple))
    return ValueSpec(PYOBJ, py_type=type(value), value=value)


def describe(spec):
    """A short human-readable label for a spec (used in trace events)."""
    if spec is None:
        return "none"
    if spec.is_tensor_like:
        label = "%s[%s %s]" % (spec.kind, spec.dtype.name, spec.shape)
        return label
    if spec.kind == LIST:
        return "%s(%s)" % ("tuple" if spec.is_tuple else "list",
                           ", ".join(describe(e) for e in spec.elements))
    if spec.kind == PYOBJ:
        return "pyobj[%s]" % spec.py_type.__name__
    return spec.kind


def merge(a, b):
    """Lattice join: the most specific spec generalizing both.

    A join that *loses* information (constant -> shaped tensor, concrete
    dim -> ``?``, anything -> bottom) is a relaxation and is reported as
    a ``relax`` trace event when tracing is enabled.
    """
    result = _merge(a, b)
    if TRACER.level and a is not None and b is not None \
            and result is not a and result is not b \
            and _is_relaxation(a, result):
        TRACER.instant("relax", "spec_merge",
                       before=describe(a), observed=describe(b),
                       after=describe(result))
    return result


def _is_relaxation(before, after):
    """Did the join move strictly down the lattice (lose an assumption)?"""
    if before.kind == BOTTOM:
        return False    # already at the bottom: nothing left to lose
    if after.kind == BOTTOM or after.kind != before.kind:
        return True
    if before.is_tensor_like and after.is_tensor_like:
        before_dims = None if before.shape is None else before.shape.dims
        after_dims = None if after.shape is None else after.shape.dims
        return before_dims != after_dims
    return False


def _merge(a, b):
    if a is None:
        return b
    if b is None:
        return a
    if a.kind == BOTTOM or b.kind == BOTTOM:
        return ValueSpec.bottom()
    if a.is_tensor_like and b.is_tensor_like:
        if a.dtype is not b.dtype:
            return ValueSpec.bottom()
        if a.kind == CONST_TENSOR and b.kind == CONST_TENSOR and \
                a.value.shape == b.value.shape and \
                np.array_equal(a.value, b.value):
            return a
        shape = a.shape.relax_against(b.shape)
        return ValueSpec(TENSOR, dtype=a.dtype, shape=shape)
    if a.kind != b.kind:
        return ValueSpec.bottom()
    if a.kind == NONE:
        return a
    if a.kind == CONST_PY:
        return a if a.value == b.value else ValueSpec.bottom()
    if a.kind == CALLABLE:
        return a if a.value is b.value else ValueSpec.bottom()
    if a.kind == VARIABLE:
        return a if a.value is b.value else ValueSpec.bottom()
    if a.kind == PYOBJ:
        if a.py_type is b.py_type:
            same = a.value is b.value and a.value is not None
            return ValueSpec(PYOBJ, py_type=a.py_type,
                             value=a.value if same else None)
        return ValueSpec.bottom()
    if a.kind == LIST:
        if a.is_tuple != b.is_tuple or len(a.elements) != len(b.elements):
            return ValueSpec.bottom()
        return ValueSpec(LIST, is_tuple=a.is_tuple,
                         elements=[merge(x, y) for x, y in
                                   zip(a.elements, b.elements)])
    return ValueSpec.bottom()


def relax_constants(spec):
    """Drop value-level assumptions, keeping dtype/shape (lattice step)."""
    if spec.kind == CONST_TENSOR:
        return ValueSpec(TENSOR, dtype=spec.dtype, shape=spec.shape)
    if spec.kind == LIST:
        return ValueSpec(LIST, is_tuple=spec.is_tuple,
                         elements=[relax_constants(e)
                                   for e in spec.elements])
    return spec


def matches(spec, value):
    """Precheck: does a concrete value satisfy the spec's assumptions?

    This is the cache-retrieval validation of paper figure 2 (1): cheap
    checks performed *before* graph execution.
    """
    if spec is None or spec.kind == BOTTOM:
        return False
    if spec.kind == NONE:
        return value is None
    if spec.is_tensor_like:
        arr = _as_array(value)
        if arr is None or arr.dtype != spec.dtype.np_dtype:
            return False
        if spec.kind == CONST_TENSOR:
            return arr.shape == spec.value.shape and \
                np.array_equal(arr, spec.value)
        return spec.shape.matches_value(arr.shape)
    if spec.kind == CONST_PY:
        return type(value) is type(spec.value) and value == spec.value
    if spec.kind == CALLABLE:
        return getattr(value, "__func__", value) is spec.value
    if spec.kind == VARIABLE:
        return value is spec.value
    if spec.kind == PYOBJ:
        if type(value) is not spec.py_type:
            return False
        return spec.value is None or value is spec.value
    if spec.kind == LIST:
        if spec.is_tuple and not isinstance(value, tuple):
            return False
        if not spec.is_tuple and not isinstance(value, list):
            return False
        if len(value) != len(spec.elements):
            return False
        return all(matches(e, v) for e, v in zip(spec.elements, value))
    return False


def _as_array(value):
    if isinstance(value, Tensor):
        return value.value.array
    if isinstance(value, TensorValue):
        return value.array
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, (bool, int, float, np.bool_, np.integer,
                          np.floating)):
        return TensorValue.of(value if not isinstance(value, np.generic)
                              else value.item()).array
    return None


class Precheck:
    """Base for cache-retrieval prechecks (paper figure 2 (1)).

    Prechecks used to be closures; they are small callable *objects* so
    that persisted artifacts (:mod:`repro.janus.diskcache`) can pickle
    them alongside the graph — closures don't pickle, data does.  Each
    instance is called with the positional-argument tuple and returns
    whether the burned-in assumption still holds.

    ``portable`` marks whether the check is meaningful in a different
    process: value/shape/type checks are, identity (``is``) checks pin
    objects of *this* process and are not.  The serialization layer
    refuses to persist artifacts carrying non-portable prechecks.
    """

    __slots__ = ()
    portable = True


class ArgConstTensor(Precheck):
    """Argument ``index`` equals a burned-in constant tensor.

    The content comparison is memoized through the write barrier: after
    a full ``np.array_equal`` match against a tracked (sealed)
    TensorValue, the pair ``(value, version)`` is remembered.  A sealed
    buffer cannot change content without a COW rebind (new ``array``
    identity under the same TensorValue, version bumped) — so seeing
    the same TensorValue at the same version proves equality with two
    identity checks instead of an O(n) element compare.  Signatures
    carrying many constant tensor arguments (frozen weights passed
    positionally, ResNet-style) pay the full compare only on the first
    call per distinct tensor object.

    The memo is per-process bookkeeping: it pins a live TensorValue, so
    pickling for the disk cache drops it (the loading process re-earns
    it on first match).
    """

    __slots__ = ("index", "value", "_memo")

    def __init__(self, index, value):
        self.index = index
        self.value = np.asarray(value)
        self._memo = None    # (TensorValue, version) of the last match

    def __getstate__(self):
        return (self.index, self.value)

    def __setstate__(self, state):
        self.index, self.value = state
        self._memo = None

    def __call__(self, args):
        value = args[self.index]
        tv = value.value if isinstance(value, Tensor) else \
            value if isinstance(value, TensorValue) else None
        if tv is not None:
            memo = self._memo    # local ref: racing writers can't tear
            if memo is not None and memo[0] is tv \
                    and memo[1] == tv.version:
                return True
            arr = tv.array
        else:
            arr = _as_array(value)
            if arr is None:
                return False
        ok = arr.dtype == self.value.dtype \
            and arr.shape == self.value.shape \
            and np.array_equal(arr, self.value)
        if ok and tv is not None and (tv.tracked or tv.track()):
            self._memo = (tv, tv.version)
        return ok


class ArgSpecMatches(Precheck):
    """Argument ``index`` satisfies a dtype/shape spec."""

    __slots__ = ("index", "spec")

    def __init__(self, index, spec):
        self.index = index
        self.spec = spec

    @property
    def portable(self):
        return self.spec.kind in (TENSOR, CONST_TENSOR)

    def __call__(self, args):
        return matches(self.spec, args[self.index])


class ArgEquals(Precheck):
    """Argument ``index`` compares equal to a burned-in Python value."""

    __slots__ = ("index", "value")

    def __init__(self, index, value):
        self.index = index
        self.value = value

    def __call__(self, args):
        return args[self.index] == self.value


class ArgCallableIs(Precheck):
    """Argument ``index`` is the same underlying function (identity)."""

    __slots__ = ("index", "target")
    portable = False

    def __init__(self, index, target):
        self.index = index
        self.target = target

    def __call__(self, args):
        value = args[self.index]
        return getattr(value, "__func__", value) is self.target


class ArgIsObject(Precheck):
    """Argument ``index`` is a specific object (identity)."""

    __slots__ = ("index", "obj")
    portable = False

    def __init__(self, index, obj):
        self.index = index
        self.obj = obj

    def __call__(self, args):
        return args[self.index] is self.obj


class ArgTypeIs(Precheck):
    """Argument ``index`` has exactly a burned-in type (identity)."""

    __slots__ = ("index", "py_type")
    portable = False

    def __init__(self, index, py_type):
        self.index = index
        self.py_type = py_type

    def __call__(self, args):
        return type(args[self.index]) is self.py_type


class ArgSeqLen(Precheck):
    """Argument ``index`` is a sequence of a burned-in length."""

    __slots__ = ("index", "length")

    def __init__(self, index, length):
        self.index = index
        self.length = length

    def __call__(self, args):
        value = args[self.index]
        return isinstance(value, (list, tuple)) \
            and len(value) == self.length


class ArgItemMatches(Precheck):
    """Element ``item`` of sequence argument ``index`` satisfies a spec."""

    __slots__ = ("index", "item", "spec")

    def __init__(self, index, item, spec):
        self.index = index
        self.item = item
        self.spec = spec

    @property
    def portable(self):
        return self.spec.kind in (TENSOR, CONST_TENSOR)

    def __call__(self, args):
        return matches(self.spec, args[self.index][self.item])


class GlobalEquals(Precheck):
    """A module global read at conversion time still has its old value.

    Portable form: when the converted function's globals *are* its
    module's ``__dict__`` (the common case) and the burned-in value is a
    plain scalar, the check stores only ``(module name, global name,
    value)`` and re-resolves through ``sys.modules`` in the loading
    process.  Otherwise (exec'd functions, synthetic globals, rich
    values) it pins the function object itself and is not portable.
    """

    __slots__ = ("module", "name", "value", "target", "portable")

    def __init__(self, target, name, value):
        self.name = name
        self.value = value
        mod = getattr(target, "__module__", None)
        module = sys.modules.get(mod) if mod else None
        if module is not None \
                and getattr(target, "__globals__", None) is module.__dict__ \
                and (value is None
                     or isinstance(value, (bool, int, float, str))):
            self.module = mod
            self.target = None
            self.portable = True
        else:
            self.module = None
            self.target = target
            self.portable = False

    def __call__(self, args):
        if self.target is not None:
            globals_dict = self.target.__globals__
        else:
            module = sys.modules.get(self.module)
            if module is None:
                return False
            globals_dict = module.__dict__
        return self.name in globals_dict \
            and globals_dict[self.name] == self.value


def expected_attr_spec(spec):
    """Encode a spec as the ``expected`` attr of a py_get node."""
    if spec is None or spec.kind == BOTTOM:
        return None
    if spec.is_tensor_like:
        return ("tensor", spec.dtype, spec.shape)
    if spec.kind == PYOBJ:
        return ("pyref", spec.py_type.__name__)
    return None


def spec_digest(spec):
    """Hashable token capturing *everything* a graph burns in from a spec.

    Unlike :meth:`ValueSpec.signature` (type-level only, used for cache
    keys), this includes concrete shapes and constant values, because the
    incremental regenerator (:mod:`repro.janus.fragments`) uses digest
    equality to decide whether a cached conversion artifact built under
    the old spec is still exact under the new one.  Two specs with equal
    digests must produce identical converted graphs.
    """
    if spec is None:
        return ("none",)
    if spec.kind == CONST_TENSOR:
        dims = None if spec.shape is None else spec.shape.dims
        src = spec.source
        if src is not None and src.array is spec.value \
                and (src.tracked or src.track()):
            # Write-barrier fast path: a sealed buffer cannot change
            # content without a COW rebind (which breaks the ``is``
            # check) or a version bump, so (identity, version) is an
            # exact stand-in for the content hash.  An untracked but
            # trackable source is sealed here so the digest shape never
            # flips untracked→tracked across regenerations (the flip
            # would spuriously invalidate matching specs once).  The
            # spec pins ``src`` alive through its slot, so the id
            # cannot be reused while this digest is comparable.
            return (spec.kind, spec.dtype.name, dims, spec.value.shape,
                    "wbv", id(src), src.version)
        arr = np.asarray(spec.value)
        if arr.nbytes <= 4096:
            return (spec.kind, spec.dtype.name, dims, arr.shape,
                    arr.tobytes())
        return (spec.kind, spec.dtype.name, dims, arr.shape, id(spec.value))
    if spec.kind == TENSOR:
        dims = None if spec.shape is None else spec.shape.dims
        return (spec.kind, spec.dtype.name, dims)
    if spec.kind == CONST_PY:
        try:
            hash(spec.value)
        except TypeError:
            return (spec.kind, type(spec.value).__qualname__,
                    id(spec.value))
        return (spec.kind, type(spec.value).__name__, spec.value)
    if spec.kind == CALLABLE:
        return (spec.kind, CALLABLE_REGISTRY.token_for(spec.value))
    if spec.kind == VARIABLE:
        return (spec.kind, spec.value.uid)
    if spec.kind == PYOBJ:
        return (spec.kind, spec.py_type.__qualname__,
                None if spec.value is None else id(spec.value))
    if spec.kind == LIST:
        return (spec.kind, spec.is_tuple,
                tuple(spec_digest(e) for e in spec.elements))
    return (spec.kind,)

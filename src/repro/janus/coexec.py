"""Terra-style imperative–symbolic co-execution (docs/coexecution.md).

JANUS as described in the paper is all-or-nothing: one unconvertible
construct routes the whole function to the imperative executor forever
(figure 2 path (C)).  Per Terra (arXiv 2201.09210), this module splits
such a function at its top-level statements into an alternating
schedule of

* **symbolic fragments** — maximal runs of convertible statements,
  synthesized into standalone functions and wrapped in their own
  :class:`~repro.janus.api.JanusFunction` so they reuse the entire
  profile → speculate → guard → regenerate pipeline (including
  ``compile_generated`` lowering and the per-fragment GraphCache), and
* **imperative gaps** — the unsupported statements, synthesized into
  plain functions executed eagerly.

Live values cross each handoff boundary through an explicit environment
dict; Variables and heap effects cross through the heap itself (gaps
mutate eagerly, fragments commit their deferred state updates
all-or-nothing before returning).  Every segment returns a uniform
``(done, payload)`` pair: ``done`` means a ``return`` statement inside
the segment ended the call and ``payload`` is the function result;
otherwise ``payload`` carries the segment's live-out values.

**Refinement.**  The initial partition is static (coverage-scan
violations, known-opaque method calls, and the statement the
whole-function conversion died in).  Anything the static scan misses is
caught dynamically: fragments run with ``fail_on_not_convertible`` so a
conversion failure surfaces as :class:`~repro.errors.NotConvertible`
annotated with the failing line, and the plan splits the fragment at
that statement — before the fragment executed anything, so the call
resumes correctly with the refined schedule.  A fragment that shrinks
to a single unconvertible statement becomes a gap; a plan whose
symbolic segments all degenerate into gaps abandons itself and the
function transitions to classic imperative-only.

**Fallback.**  Any boundary mismatch (a segment returning the wrong
structure, a live-in missing from the environment) abandons the plan
and re-runs the whole function imperatively — correctness always wins
over the partial speedup.  Note the caveat: segments already executed
before the mismatch have applied their heap effects, so the imperative
re-run may repeat them; the planner's static binding makes this path
unreachable short of a bug, but it is the documented policy
(docs/coexecution.md#boundary-mismatches).

Functions with an optimizer (training functions) are never co-executed:
per-fragment symbolic autodiff does not compose across imperative gaps.
Inference functions co-execute freely — and when a
:class:`~repro.imperative.tape.GradientTape` is recording, the plan
runs its fragments imperatively for that call so the tape observes
every op and gradients match the un-split function exactly.
"""

import ast
import copy
import itertools
import linecache
import threading
import types

from ..errors import NotConvertible
from ..imperative.tape import _tapes
from ..observability import COUNTERS, TRACER, reqtrace
from .compiled import CoExecArtifact
from .coverage import scan as coverage_scan
from .graphgen import assigned_names, read_names

#: Method names that are opaque to the graph generator and common enough
#: to pre-classify statically (dynamic refinement catches the rest).
_OPAQUE_METHODS = frozenset({
    "numpy", "tolist", "item", "append", "extend", "insert", "remove",
    "update", "setdefault", "write", "writelines", "read", "readline",
})

#: Unique suffix for synthesized-source filenames (two plans over the
#: same function must not collide in linecache).
_PLAN_IDS = itertools.count()

#: NotConvertible feature tags that partitioning cannot help with: the
#: failure is about the function's own signature/arguments, not a body
#: statement.  ("source"/"coroutine" raised for the parent itself are
#: gated by the get_function_ast call in build_plan; raised for a
#: *callee* they are localized to a call statement and splittable.)
_UNSPLITTABLE_FEATURES = frozenset({
    "signature", "argument", "training",
})


class BoundaryMismatch(Exception):
    """A handoff boundary produced an unexpected shape; the caller must
    abandon the plan and fall back whole-function imperative."""


def _tape_active():
    return any(t._recording for t in _tapes())


# ---------------------------------------------------------------------------
# Statement analysis
# ---------------------------------------------------------------------------

def _stmt_violations(stmt):
    """Coverage-scan a single statement (yields (feature, lineno))."""
    return coverage_scan(types.SimpleNamespace(body=[stmt]))


def _has_opaque_call(stmt):
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _OPAQUE_METHODS:
            return True
    return False


def _is_static_gap(stmt):
    """Cheap pre-classification: obviously-unconvertible statement?"""
    if _stmt_violations(stmt):
        return True
    return _has_opaque_call(stmt)


def _function_names(stmts):
    """Names bound to nested function objects in these statements."""
    names = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.FunctionDef):
                names.add(node.name)
            elif isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


class _ReturnTransformer(ast.NodeTransformer):
    """``return v`` → ``return (True, v)`` — the segment protocol.

    Nested scopes keep their own ``return`` semantics untouched.
    """

    def visit_FunctionDef(self, node):
        return node

    def visit_AsyncFunctionDef(self, node):
        return node

    def visit_Lambda(self, node):
        return node

    def visit_ClassDef(self, node):
        return node

    def visit_Return(self, node):
        value = node.value if node.value is not None \
            else ast.Constant(value=None)
        pair = ast.Tuple(elts=[ast.Constant(value=True), value],
                         ctx=ast.Load())
        return ast.copy_location(ast.Return(value=pair), node)


def _name_load(name):
    return ast.Name(id=name, ctx=ast.Load())


def _materialize(func, fdef, filename):
    """Compile a synthesized FunctionDef into a callable cloning ``func``.

    Like :func:`repro.janus.instrument.compile_function_def`, but routed
    through real source text registered in ``linecache`` so the
    resulting callable survives ``inspect.getsource`` — fragment
    functions are re-parsed by the instrumentation and graph-generation
    machinery.  Returns ``(callable, source_text)``.
    """
    target = getattr(func, "__func__", func)
    freevars = target.__code__.co_freevars
    module = ast.Module(body=[], type_ignores=[])
    if freevars:
        factory_args = ast.arguments(
            posonlyargs=[], args=[ast.arg(arg=v) for v in freevars],
            vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
            defaults=[])
        touch = [ast.Assign(
            targets=[ast.Name(id="__janus_touch__", ctx=ast.Store())],
            value=ast.Tuple(elts=[_name_load(v) for v in freevars],
                            ctx=ast.Load()))]
        factory = ast.FunctionDef(
            name="__janus_factory__", args=factory_args,
            body=[fdef] + touch + [ast.Return(value=_name_load(fdef.name))],
            decorator_list=[], returns=None)
        module.body = [factory]
    else:
        module.body = [fdef]
    ast.fix_missing_locations(module)
    src = ast.unparse(module) + "\n"
    linecache.cache[filename] = (len(src), None, src.splitlines(True),
                                 filename)
    code = compile(src, filename, "exec")
    globs = dict(target.__globals__)
    namespace = {}
    exec(code, globs, namespace)
    if freevars:
        factory_fn = namespace["__janus_factory__"]
        inner_code = None
        for const in factory_fn.__code__.co_consts:
            if isinstance(const, types.CodeType) and \
                    const.co_name == fdef.name:
                inner_code = const
                break
        if inner_code is None:
            raise NotConvertible("failed to locate synthesized code",
                                 feature="closure")
        cell_by_name = dict(zip(target.__code__.co_freevars,
                                target.__closure__ or ()))
        closure = tuple(cell_by_name[name]
                        for name in inner_code.co_freevars)
        fn = types.FunctionType(inner_code, globs, fdef.name, None,
                                closure)
    else:
        fn = namespace[fdef.name]
    return fn, src


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------

class _Segment:
    """One contiguous run ``[start, end)`` of top-level statements."""

    __slots__ = ("kind", "start", "end", "live_in", "live_out", "fn",
                 "jf", "stmt_ranges", "filename")

    def __init__(self, kind, start, end):
        self.kind = kind            # "sym" | "gap"
        self.start = start
        self.end = end
        self.live_in = ()
        self.live_out = ()
        self.fn = None              # plain callable (gaps)
        self.jf = None              # JanusFunction (symbolic fragments)
        #: [(lineno, end_lineno, body_index), ...] in synthesized-source
        #: coordinates — maps a fragment conversion failure back to the
        #: top-level statement it belongs to.
        self.stmt_ranges = ()
        self.filename = None


class CoExecPlan:
    """The alternating fragment/gap schedule for one JanusFunction."""

    def __init__(self, parent, func, fdef, reason):
        self.name = getattr(func, "__name__", "?")
        self.func = func
        self.config = parent.config
        self.body = fdef.body
        self.param_names = [a.arg for a in fdef.args.args]
        self.not_convertible_reason = reason
        self._plan_id = next(_PLAN_IDS)
        self._lock = threading.RLock()
        self._segments = []
        self._seg_memo = {}
        #: False once refinement leaves no symbolic segment.
        self.alive = True
        self.splits = 0
        #: AST-node weight per top-level statement (converted-op ratio).
        self._weights = [sum(1 for _ in ast.walk(s)) for s in self.body]
        # Fragment configs run the same pipeline, minus recursion into
        # co-execution; NotConvertible must surface (that is the
        # refinement signal) and regeneration must stay inline so the
        # signal is raised on the calling thread.
        self._frag_config = parent.config.copy(
            coexecution=False, fail_on_not_convertible=True,
            recompile_workers=0)

    # -- partition bookkeeping ----------------------------------------------

    @property
    def segments(self):
        with self._lock:
            return list(self._segments)

    @property
    def converted_ratio(self):
        """Weighted fraction of the body inside symbolic fragments."""
        with self._lock:
            total = sum(self._weights) or 1
            sym = sum(self._weights[i]
                      for seg in self._segments if seg.kind == "sym"
                      for i in range(seg.start, seg.end))
            return sym / total

    def fragment_functions(self):
        with self._lock:
            return [seg.jf for seg in self._segments
                    if seg.kind == "sym"]

    def artifact(self):
        """The introspection/invalidation record (compiled.py)."""
        with self._lock:
            segments = [(s.kind, s.start, s.end) for s in self._segments]
            frags = [s.jf for s in self._segments if s.kind == "sym"]
        return CoExecArtifact(self.name, segments, frags,
                              self.converted_ratio)

    def invalidate(self):
        self.artifact().invalidate()

    def _defined_before(self, start):
        return set(self.param_names) | assigned_names(self.body[:start])

    def _read_after(self, end):
        return read_names(self.body[end:])

    def _set_segments(self, ranges):
        """Install a partition: fuse closure escapes and materialize
        segment callables (memoized per range).

        Adjacent gaps are deliberately NOT merged here: a refinement
        can land mid-call, after the statements of an earlier adjacent
        gap already executed — the run loop must still find a segment
        starting exactly at its resume position.  (Initial partitions
        never produce adjacent same-kind ranges; build_plan coalesces
        runs.)
        """
        ranges = self._fuse_escapes(ranges)
        segments = []
        for kind, a, b in ranges:
            seg = self._seg_memo.get((kind, a, b))
            if seg is None:
                try:
                    seg = self._synthesize(kind, a, b)
                except Exception:
                    if kind == "gap":
                        raise
                    # A fragment that cannot even be synthesized is a gap.
                    seg = self._seg_memo.get(("gap", a, b)) \
                        or self._synthesize("gap", a, b)
                    self._seg_memo[("gap", a, b)] = seg
                self._seg_memo[(seg.kind, a, b)] = seg
            segments.append(seg)
        self._segments = segments
        self.alive = any(s.kind == "sym" for s in segments)

    def _fuse_escapes(self, ranges):
        """A gap that binds a function read later must absorb the rest
        of the body: the closure's cells would not see later env
        updates, so no boundary may separate the def from its uses."""
        out = []
        n = len(self.body)
        for kind, a, b in ranges:
            if kind == "gap":
                defs = _function_names(self.body[a:b])
                if defs and defs & self._read_after(b):
                    out.append(("gap", a, n))
                    return out
            out.append((kind, a, b))
        return out

    # -- synthesis ----------------------------------------------------------

    def _synthesize(self, kind, start, end):
        seg = _Segment(kind, start, end)
        final = end == len(self.body)
        stmts = [copy.deepcopy(s) for s in self.body[start:end]]
        live_in = sorted(read_names(stmts) & self._defined_before(start))
        live_out = [] if final else sorted(
            assigned_names(stmts) & self._read_after(end))
        seg.live_in = tuple(live_in)
        seg.live_out = tuple(live_out)
        transformer = _ReturnTransformer()
        new_stmts = [transformer.visit(s) for s in stmts]
        if final:
            tail_payload = ast.Constant(value=None)
            done = True
        else:
            tail_payload = ast.Tuple(
                elts=[_name_load(n) for n in live_out], ctx=ast.Load())
            done = False
        tail = ast.Return(value=ast.Tuple(
            elts=[ast.Constant(value=done), tail_payload], ctx=ast.Load()))
        prefix = "jfrag" if kind == "sym" else "jgap"
        fname = "%s__%s_%d_%d" % (self.name, prefix, start, end)
        fdef = ast.FunctionDef(
            name=fname,
            args=ast.arguments(
                posonlyargs=[], args=[ast.arg(arg=n) for n in live_in],
                vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
                defaults=[]),
            body=new_stmts + [tail], decorator_list=[], returns=None)
        seg.filename = "<janus-coexec:%s:%d:%s:%d:%d>" % (
            self.name, self._plan_id, kind, start, end)
        fn, src = _materialize(self.func, fdef, seg.filename)
        if kind == "sym":
            from .api import JanusFunction
            seg.jf = JanusFunction(fn, config=self._frag_config)
            seg.stmt_ranges = self._index_ranges(src, fname, start,
                                                 len(stmts))
        else:
            seg.fn = fn
        return seg

    @staticmethod
    def _index_ranges(src, fname, start, n_stmts):
        """Map synthesized-source linenos back to body indices."""
        try:
            module = ast.parse(src)
        except SyntaxError:  # pragma: no cover - unparse round-trip
            return ()
        fdef = None
        for node in ast.walk(module):
            if isinstance(node, ast.FunctionDef) and node.name == fname:
                fdef = node
                break
        if fdef is None:  # pragma: no cover - unparse round-trip
            return ()
        ranges = []
        for i, stmt in enumerate(fdef.body[:n_stmts]):
            ranges.append((stmt.lineno,
                           getattr(stmt, "end_lineno", stmt.lineno),
                           start + i))
        return tuple(ranges)

    # -- refinement ----------------------------------------------------------

    def _split(self, seg, exc):
        """Refine the partition after ``seg`` failed to convert."""
        with self._lock:
            if seg not in self._segments:
                return          # another caller already refined here
            index = self._map_failure(seg, exc)
            ranges = []
            for s in self._segments:
                if s is not seg:
                    ranges.append((s.kind, s.start, s.end))
                    continue
                if index is None or seg.end - seg.start <= 1:
                    ranges.append(("gap", seg.start, seg.end))
                else:
                    if index > seg.start:
                        ranges.append(("sym", seg.start, index))
                    ranges.append(("gap", index, index + 1))
                    if index + 1 < seg.end:
                        ranges.append(("sym", index + 1, seg.end))
            self._set_segments(ranges)
            self.splits += 1
        COUNTERS.inc("coexec.splits")
        if TRACER.level:
            TRACER.instant("coexec_split", self.name,
                           segment="%d:%d" % (seg.start, seg.end),
                           detail=str(exc))

    @staticmethod
    def _map_failure(seg, exc):
        lineno = getattr(exc, "lineno", None)
        if lineno is None:
            return None
        for lo, hi, index in seg.stmt_ranges:
            if lo <= lineno <= hi:
                return index
        return None

    def _segment_at(self, start):
        with self._lock:
            for seg in self._segments:
                if seg.start == start:
                    return seg
        return None

    # -- execution -----------------------------------------------------------

    def _bind_env(self, args):
        names = self.param_names
        if len(args) > len(names):
            raise BoundaryMismatch(
                "%d args for %d parameters" % (len(args), len(names)))
        env = dict(zip(names, args))
        defaults = getattr(self.func, "__defaults__", None) or ()
        for name, value in zip(names[len(names) - len(defaults):],
                               defaults):
            env.setdefault(name, value)
        if len(env) < len(names):
            missing = [n for n in names if n not in env]
            raise BoundaryMismatch("missing arguments %r" % (missing,))
        return env

    def run(self, args):
        """Execute one call: returns ``(result, fragment_graph_runs,
        alive)``.  Raises :class:`BoundaryMismatch` when a handoff
        boundary broke (caller falls back whole-function imperative).
        """
        env = self._bind_env(args)
        imperative_fragments = _tape_active()
        frag_graph_runs = 0
        n = len(self.body)
        position = 0
        while position < n:
            seg = self._segment_at(position)
            if seg is None:  # pragma: no cover - partition invariant
                raise BoundaryMismatch(
                    "no segment starts at statement %d" % position)
            try:
                values = [env[name] for name in seg.live_in]
            except KeyError as exc:
                raise BoundaryMismatch(
                    "live-in %s undefined at statement %d"
                    % (exc, position)) from exc
            if seg.kind == "sym" and not imperative_fragments:
                before = seg.jf.stats["graph_runs"]
                try:
                    with reqtrace.span("coexec_fragment", self.name,
                                       stmts="%d:%d" % (seg.start,
                                                        seg.end)):
                        result = seg.jf(*values)
                except NotConvertible as exc:
                    # The fragment did not execute: refine the partition
                    # and resume this call at the same statement.
                    self._split(seg, exc)
                    continue
                frag_graph_runs += seg.jf.stats["graph_runs"] - before
            elif seg.kind == "sym":
                # A GradientTape is recording: run the fragment body
                # eagerly so the tape sees every op (gradient parity
                # through boundaries).
                result = seg.jf.func(*values)
            else:
                with reqtrace.span("coexec_gap", self.name,
                                   stmts="%d:%d" % (seg.start, seg.end)):
                    result = seg.fn(*values)
            done, payload = self._unpack(seg, result)
            if done:
                return payload, frag_graph_runs, self.alive
            self._writeback(seg, payload, env)
            position = seg.end
        return None, frag_graph_runs, self.alive

    @staticmethod
    def _unpack(seg, result):
        if not isinstance(result, (tuple, list)) or len(result) != 2:
            raise BoundaryMismatch(
                "segment %d:%d returned %r instead of (done, payload)"
                % (seg.start, seg.end, type(result).__name__))
        return bool(result[0]), result[1]

    @staticmethod
    def _writeback(seg, payload, env):
        if not seg.live_out:
            return
        if not isinstance(payload, (tuple, list)) or \
                len(payload) != len(seg.live_out):
            raise BoundaryMismatch(
                "segment %d:%d live-out arity mismatch (%d names, %r)"
                % (seg.start, seg.end, len(seg.live_out), payload))
        for name, value in zip(seg.live_out, payload):
            env[name] = value


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def build_plan(parent, exc):
    """Build a :class:`CoExecPlan` for a function whose whole-function
    conversion raised ``exc`` — or None when partitioning cannot help.
    """
    func = parent.func
    if parent.optimizer is not None:
        return None
    if getattr(exc, "feature", None) in _UNSPLITTABLE_FEATURES:
        return None
    if hasattr(func, "__self__"):
        return None
    try:
        from .instrument import get_function_ast
        fdef = get_function_ast(func, mutable=True)
    except NotConvertible:
        return None
    args = fdef.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        return None
    body = fdef.body
    if len(body) < 2:
        return None
    # Scope declarations bind the whole function body to one frame;
    # partitioned segments cannot honour them.
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                return None
    gap_indices = {i for i, stmt in enumerate(body)
                   if _is_static_gap(stmt)}
    lineno = getattr(exc, "lineno", None)
    if lineno is not None:
        for i, stmt in enumerate(body):
            if stmt.lineno <= lineno <= getattr(stmt, "end_lineno",
                                                stmt.lineno):
                gap_indices.add(i)
                break
    if not gap_indices or len(gap_indices) == len(body):
        return None
    ranges = []
    for i in range(len(body)):
        kind = "gap" if i in gap_indices else "sym"
        if ranges and ranges[-1][0] == kind:
            ranges[-1] = (kind, ranges[-1][1], i + 1)
        else:
            ranges.append((kind, i, i + 1))
    plan = CoExecPlan(parent, func, fdef, str(exc))
    try:
        plan._set_segments(ranges)
    except Exception:
        return None
    if not plan.alive:
        return None
    COUNTERS.inc("coexec.plans_built")
    if TRACER.level:
        TRACER.instant("coexec_plan", plan.name,
                       segments=[(k, a, b) for k, a, b
                                 in ((s.kind, s.start, s.end)
                                     for s in plan.segments)],
                       converted_ratio=plan.converted_ratio,
                       reason=str(exc))
    return plan

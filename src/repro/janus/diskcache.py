"""Persistent cross-process compile cache (warm-start backing store).

The in-memory :class:`~repro.janus.cache.GraphCache` dies with its
process, so every worker in a fleet — and every restart — pays the full
profile → convert → optimize → lower pipeline for functions an identical
neighbour already compiled.  This module is the disk tier underneath it:
serialized pre-fusion :class:`~repro.janus.graphgen.GeneratedGraph`
payloads (see :func:`repro.janus.compiled.serialize_generated`) keyed so
that a hit is *provably* the artifact this process would have compiled
itself:

* **function source hash** — the decorated function's ``getsource``
  text; an edited function can never alias its old graphs,
* **spec digest** — the call-signature tuple (dtype/rank of every
  argument); one entry per specialization, exactly like the memory tier,
* **config digest** — every JanusConfig field that alters generation,
* **repro version + artifact format** — cross-version entries miss.

Store discipline (the part that makes sharing a directory across N
concurrent workers safe):

* **atomic publication** — payloads are written to a same-directory
  temp file and ``os.replace``'d into place, so a reader sees either
  nothing or a complete record, never a torn write,
* **tolerance** — a corrupt, truncated, version-skewed, or
  key-mismatched entry is a *miss*, never an error; the worker falls
  back to compiling (and republishes a good entry),
* **LRU bound** — the directory is capped (default 256 MiB,
  ``JANUS_CACHE_MAX_BYTES``); eviction drops oldest-mtime entries and
  hits refresh mtime.

Nothing here is imported on the default path: the store is only
constructed when ``JanusConfig.cache_dir`` / ``JANUS_CACHE_DIR`` is
set.  Instrumentation lands in
:data:`repro.observability.diskcache.DISKCACHE` (the ``janus-stats``
"disk cache" section) plus plain counters.
"""

import hashlib
import inspect
import os
import pickle
import tempfile
import time

from .. import __version__
from ..observability import COUNTERS, TRACER, reqtrace
from ..observability.diskcache import DISKCACHE
from .compiled import ARTIFACT_FORMAT

__all__ = ["DiskGraphStore", "store_for", "entry_key", "source_hash",
           "config_digest", "signature_portable"]

#: Cache-entry file suffix ("janus graph, compiled").
SUFFIX = ".jgc"

#: JanusConfig fields that alter what generate()/compile_generated()
#: produce; any drift forces a fresh key.  Deliberately explicit — new
#: fields must opt in, so an unrelated config knob never splits the
#: cache and a codegen-relevant one is a conscious decision.
_CONFIG_KEY_FIELDS = (
    "profile_runs", "unroll_stable_control_flow", "specialize_types",
    "optimize_graph", "parallel_execution", "deferred_state_update",
    "max_unroll", "max_recursion_inline", "parallel_heavy_ops_threshold",
    "tensor_write_barrier", "lowering",
)


def source_hash(func):
    """Hex digest of the function's source text, or None when unknown.

    None (dynamically exec'd code, interactive definitions) disables
    persistence for the function — a graph we cannot tie to source is a
    graph we cannot safely invalidate on edit.
    """
    target = getattr(func, "__func__", func)
    try:
        source = inspect.getsource(target)
    except (OSError, TypeError):
        return None
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_digest(config):
    parts = tuple((name, getattr(config, name, None))
                  for name in _CONFIG_KEY_FIELDS)
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def signature_portable(signature):
    """Whether a call signature means the same thing in another process.

    Tensor ("T"), plain-constant ("C"), None ("N"), and list ("L")
    tokens describe values; callable ("F"), variable ("V"), pyobj
    ("P"), and bottom ("_") tokens name *objects of this process* and
    can never key a shared entry.
    """
    for token in signature:
        tag = token[0]
        if tag in ("T", "N"):
            continue
        if tag == "C":
            if not (token[1] is None
                    or isinstance(token[1], (bool, int, float, str))):
                return False
            continue
        if tag == "L":
            if not signature_portable(token[2]):
                return False
            continue
        return False
    return True


def entry_key(src_hash, signature, config):
    """Stable hex key for one (function, specialization, config) entry."""
    material = repr((__version__, ARTIFACT_FORMAT, src_hash,
                     config_digest(config), signature))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class DiskGraphStore:
    """One process's handle on a (possibly shared) cache directory."""

    def __init__(self, path, max_bytes):
        self.path = str(path)
        self.max_bytes = int(max_bytes)

    def _entry_path(self, key):
        return os.path.join(self.path, key + SUFFIX)

    # -- load ----------------------------------------------------------------

    def load(self, key, rebuild=None):
        """Load the entry for *key*, or None (every failure is a miss).

        Without *rebuild*, returns the raw payload bytes.  With
        *rebuild* (a callable payload -> artifact), returns the rebuilt
        artifact, counts a ``rebuild`` miss when it raises, and times
        the *whole* warm-start price — read + validate + rebuild — into
        the load-latency histogram.  The probe is a ``diskcache_probe``
        span on the active request trace (plain tracer span otherwise),
        so a warm start is attributable to the request that paid it.
        """
        with reqtrace.span("diskcache_probe", key[:12]):
            return self._load(key, rebuild)

    def _load(self, key, rebuild):
        start = time.perf_counter()
        entry_path = self._entry_path(key)
        try:
            with open(entry_path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return self._miss(key, "absent")
        try:
            record = pickle.loads(raw)
        except Exception:
            return self._miss(key, "corrupt")
        if not isinstance(record, dict):
            return self._miss(key, "corrupt")
        if record.get("format") != ARTIFACT_FORMAT or \
                record.get("version") != __version__:
            return self._miss(key, "version")
        if record.get("key") != key:
            return self._miss(key, "key_mismatch")
        payload = record.get("payload")
        if not isinstance(payload, bytes) or \
                hashlib.sha256(payload).hexdigest() != record.get("sha256"):
            return self._miss(key, "corrupt")
        result = payload
        if rebuild is not None:
            try:
                result = rebuild(payload)
            except Exception:
                return self._miss(key, "rebuild")
        try:
            os.utime(entry_path, None)   # refresh LRU position
        except OSError:
            pass
        DISKCACHE.record_hit(time.perf_counter() - start)
        COUNTERS.inc("diskcache.hits")
        if TRACER.level:
            TRACER.instant("janus", "diskcache_hit", key=key[:12],
                           graph=record.get("graph"),
                           bytes=len(payload))
        return result

    def _miss(self, key, reason):
        DISKCACHE.record_miss(reason)
        COUNTERS.inc("diskcache.misses.%s" % reason)
        if reason not in ("absent",):
            # A recognizably bad entry is dead weight: drop it so the
            # next publisher replaces it instead of re-missing forever.
            self._drop(key)
        return None

    def _drop(self, key):
        try:
            os.unlink(self._entry_path(key))
        except OSError:
            pass

    # -- store ---------------------------------------------------------------

    def store(self, key, payload, graph_name=None):
        """Atomically publish *payload* under *key*; returns success.

        Concurrent publishers of the same key race benignly: both
        records are identical by construction (same source, spec,
        config, version), so whichever ``os.replace`` lands last wins
        with identical content.
        """
        record = {
            "format": ARTIFACT_FORMAT,
            "version": __version__,
            "key": key,
            "payload": payload,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "graph": graph_name,
            "created": time.time(),
        }
        try:
            os.makedirs(self.path, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=key[:12] + ".", suffix=".tmp", dir=self.path)
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(record, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            COUNTERS.inc("diskcache.store_errors")
            return False
        DISKCACHE.record_store(len(payload))
        COUNTERS.inc("diskcache.stores")
        if TRACER.level:
            TRACER.instant("janus", "diskcache_store", key=key[:12],
                           graph=graph_name, bytes=len(payload))
        self._evict()
        return True

    # -- maintenance ---------------------------------------------------------

    def _scan(self):
        """(path, mtime, size) for every entry; tolerant of races."""
        entries = []
        try:
            names = os.listdir(self.path)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(SUFFIX):
                continue
            full = os.path.join(self.path, name)
            try:
                stat = os.stat(full)
            except OSError:
                continue    # concurrently evicted by another worker
            entries.append((full, stat.st_mtime, stat.st_size))
        return entries

    def _evict(self):
        entries = self._scan()
        total = sum(size for _, _, size in entries)
        evicted = 0
        if total > self.max_bytes:
            for full, _, size in sorted(entries, key=lambda e: e[1]):
                if total <= self.max_bytes:
                    break
                try:
                    os.unlink(full)
                except OSError:
                    continue
                total -= size
                evicted += 1
        if evicted:
            DISKCACHE.record_evictions(evicted)
            COUNTERS.inc("diskcache.evictions", evicted)
        DISKCACHE.set_disk_usage(
            total, len(entries) - evicted)

    def usage(self):
        """(bytes, entries) currently on disk (also refreshes gauges)."""
        entries = self._scan()
        total = sum(size for _, _, size in entries)
        DISKCACHE.set_disk_usage(total, len(entries))
        return total, len(entries)


def store_for(config):
    """The configured DiskGraphStore, or None when persistence is off."""
    path = config.resolved_cache_dir()
    if not path:
        return None
    return DiskGraphStore(path, config.resolved_cache_max_bytes())

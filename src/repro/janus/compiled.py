"""The compile-once execution artifact.

JANUS's speedup claim (paper §4.3) rests on paying conversion and
specialization cost once and then executing a cheap specialized graph
many times.  :class:`CompiledGraph` is the unit that bet is made on: it
bundles everything produced at graph-generation time — the converted
:class:`~repro.janus.graphgen.GeneratedGraph` (graph + binding plan +
prechecks), the compiled :class:`~repro.graph.executor.GraphExecutor`
schedule (with its specialized per-node guard closures), and the
compile-time metadata used to audit the amortization — so nothing is
re-derived on the hot path.

``compile_generated`` is the single construction point, called from
:mod:`repro.janus.api` inside the ``graphgen`` trace span; the artifact
then lives in the :class:`~repro.janus.cache.GraphCache` until evicted
or invalidated.
"""

import time

from ..graph.executor import GraphExecutor
from ..graph import lowering as lowering_mod
from ..observability import COUNTERS, TRACER


class CompiledGraph:
    """Everything needed to run one specialized graph, built exactly once.

    Thin by design: the artifact owns its pieces and forwards the calls
    the runtime makes per invocation (``bind_feeds`` /
    ``check_preconditions`` / ``repack_outputs``), so callers never
    reach around it to re-create executors or re-inspect the generator.

    ``lowered`` is the optional fourth-stage artifact (docs/lowering.md):
    a :class:`~repro.graph.lowering.LoweredProgram` built behind
    ``JanusConfig.lowering``.  When present, ``run_flat`` prefers it; the
    node-walking ``executor`` remains the always-correct fallback and
    the carrier of the binding/commit machinery the program shares.
    """

    __slots__ = ("generated", "executor", "signature", "node_count",
                 "compile_seconds", "lowered", "fused_ops",
                 "lowering_bailout")

    def __init__(self, generated, executor, signature=None,
                 compile_seconds=0.0, lowered=None, fused_ops=0,
                 lowering_bailout=None):
        self.generated = generated
        self.executor = executor
        self.signature = signature
        self.node_count = len(generated.graph.nodes)
        self.compile_seconds = compile_seconds
        self.lowered = lowered
        self.fused_ops = fused_ops
        self.lowering_bailout = lowering_bailout

    @property
    def graph(self):
        return self.generated.graph

    def bind_feeds(self, args):
        return self.generated.bind_feeds(args)

    def check_preconditions(self, args):
        return self.generated.check_preconditions(args)

    def repack_outputs(self, flat_values):
        return self.generated.repack_outputs(flat_values)

    def run_flat(self, feeds):
        """Execute the precompiled schedule over already-bound feeds."""
        lowered = self.lowered
        if lowered is not None:
            return lowered.run(feeds)
        return self.executor.run(feeds)

    def __repr__(self):
        detail = "lowered, %d ops fused" % self.fused_ops \
            if self.lowered is not None else "node-walking"
        return "CompiledGraph(%s, %d nodes, %s, compiled in %.1f ms)" % (
            self.graph.name, self.node_count, detail,
            self.compile_seconds * 1e3)


class RegenerationSeed:
    """What an invalidated :class:`CompiledGraph` bequeaths its successor.

    When an assumption failure invalidates a cache entry, the old
    artifact still holds two things the regeneration can reuse instead
    of re-deriving from profile data: the bound argument specs of the
    previous graph (valid wherever the relaxation did not touch them)
    and the set of profiler sites whose assumptions were relaxed — the
    *dirty set* that tells the incremental generator which fragments
    must reconvert.  The seed is remembered per call signature by the
    :class:`~repro.janus.cache.GraphCache` and consumed (popped) by the
    next ``generate()`` for that signature.
    """

    __slots__ = ("compiled", "dirty_sites")

    def __init__(self, compiled, dirty_sites=frozenset()):
        self.compiled = compiled
        self.dirty_sites = frozenset(dirty_sites)

    @property
    def bound_arg_specs(self):
        """Arg specs the previous graph was specialized on (or None)."""
        return getattr(self.compiled.generated, "bound_arg_specs", None)


def compile_generated(generated, config, signature=None):
    """Build the :class:`CompiledGraph` artifact for a generated graph.

    This is the one place executor schedules (and with them the
    specialized guard/heap-read closures) are compiled on the JANUS
    path; everything downstream reuses the artifact.
    """
    start = time.perf_counter()
    lowering_on = getattr(config, "lowering", True)
    fused_ops = 0
    if lowering_on:
        # Fuse before the executor compiles so the schedule (and the
        # node-walking fallback) run the same fused graph — bit-for-bit
        # parity between the two run paths by construction.
        lower_start = time.perf_counter()
        with TRACER.span("janus", "lower", graph=generated.graph.name):
            fused_ops = lowering_mod.fuse_graph(generated.graph)
    executor = GraphExecutor(
        generated.graph, parallel=config.parallel_execution,
        heavy_threshold=getattr(config, "parallel_heavy_ops_threshold", 2),
        tensor_write_barrier=getattr(config, "tensor_write_barrier", True))
    lowered = None
    bailout = None
    if lowering_on:
        try:
            lowered = lowering_mod.lower_executor(executor)
        except lowering_mod.LoweringBailout as exc:
            bailout = exc.reason
        except Exception:  # defensive: lowering must never block compile
            bailout = "error"
        if lowered is not None:
            COUNTERS.inc("lowering.graphs_lowered")
        else:
            COUNTERS.inc("lowering.bailout.%s" % bailout)
        COUNTERS.add_time("janus.lower",
                          time.perf_counter() - lower_start)
    else:
        bailout = "disabled"
        COUNTERS.inc("lowering.bailout.disabled")
    elapsed = time.perf_counter() - start
    COUNTERS.inc("janus.graphs_compiled")
    COUNTERS.add_time("janus.compile", elapsed)
    compiled = CompiledGraph(generated, executor, signature=signature,
                             compile_seconds=elapsed, lowered=lowered,
                             fused_ops=fused_ops,
                             lowering_bailout=bailout)
    if TRACER.level:
        TRACER.instant("graphgen", "compiled", graph=generated.graph.name,
                       nodes=compiled.node_count,
                       compile_ms=round(elapsed * 1e3, 3),
                       lowered=lowered is not None, fused_ops=fused_ops,
                       lowering_bailout=bailout)
    return compiled

"""The compile-once execution artifact.

JANUS's speedup claim (paper §4.3) rests on paying conversion and
specialization cost once and then executing a cheap specialized graph
many times.  :class:`CompiledGraph` is the unit that bet is made on: it
bundles everything produced at graph-generation time — the converted
:class:`~repro.janus.graphgen.GeneratedGraph` (graph + binding plan +
prechecks), the compiled :class:`~repro.graph.executor.GraphExecutor`
schedule (with its specialized per-node guard closures), and the
compile-time metadata used to audit the amortization — so nothing is
re-derived on the hot path.

``compile_generated`` is the single construction point, called from
:mod:`repro.janus.api` inside the ``graphgen`` trace span; the artifact
then lives in the :class:`~repro.janus.cache.GraphCache` until evicted
or invalidated.
"""

import pickle
import time

from ..graph.executor import GraphExecutor
from ..graph import lowering as lowering_mod
from ..observability import COUNTERS, TRACER
from ..tensor import PyRef, TensorValue

#: Bump when the pickled GeneratedGraph layout changes incompatibly;
#: the disk cache treats any other value as a miss.
ARTIFACT_FORMAT = 1


class UnportableArtifact(Exception):
    """This artifact pins process-local state and cannot be persisted.

    ``reason`` is a short machine-readable kind (surfaced as a
    ``diskcache.store_skipped.<reason>`` counter), never an error the
    caller must handle beyond "don't publish".
    """

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def portability_blockers(generated):
    """Why a GeneratedGraph must not cross a process boundary (or None).

    A graph is portable when nothing in it refers to objects of the
    producing process by *identity*: no Variables, no Python-heap access
    (``py_*`` nodes / PyRef constants), and no identity prechecks.  Such
    graphs are pure tensor programs — exactly the ones whose semantics
    survive pickling.
    """
    for desc, check in generated.prechecks:
        if not getattr(check, "portable", False):
            return "identity_precheck"
    seen = set()
    stack = [generated.graph]
    while stack:
        graph = stack.pop()
        if id(graph) in seen:
            continue
        seen.add(id(graph))
        for node in graph.nodes:
            if node.variable is not None:
                return "variable"
            if node.py_object is not None or node.op_name.startswith("py_"):
                return "heap_access"
            if isinstance(node.constant_value, PyRef):
                return "pyref_const"
            for func in node._nested_functions():
                if func is not None and func.graph is not None:
                    stack.append(func.graph)
    blocker = _structure_blocker(generated.output_structure)
    if blocker:
        return blocker
    return None


def _structure_blocker(structure):
    kind = structure[0]
    if kind == "const":
        value = structure[1]
        if not (value is None or isinstance(
                value, (bool, int, float, str, TensorValue))):
            return "const_output"
        return None
    if kind in ("seq", "dict"):
        for sub in structure[2]:
            blocker = _structure_blocker(sub)
            if blocker:
                return blocker
    return None


def serialize_generated(generated):
    """Pickle a (pre-fusion) GeneratedGraph, or raise UnportableArtifact.

    Must be called *before* :func:`~repro.graph.lowering.fuse_graph`
    mutates the graph: fused kernels are exec-generated code objects
    that cannot pickle.  Loading re-runs the full deterministic
    ``compile_generated`` pipeline on the deserialized graph, so loaded
    and freshly-compiled artifacts are bit-for-bit identical.
    """
    blocker = portability_blockers(generated)
    if blocker:
        raise UnportableArtifact(blocker)
    try:
        return pickle.dumps(generated, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # defensive: persistence must never block compile
        raise UnportableArtifact("pickle_error")


def deserialize_generated(payload):
    """Inverse of :func:`serialize_generated` (raises on corrupt input)."""
    generated = pickle.loads(payload)
    if not isinstance(generated, object) or \
            not hasattr(generated, "graph") or \
            not hasattr(generated, "prechecks"):
        raise ValueError("payload is not a GeneratedGraph")
    return generated


class CompiledGraph:
    """Everything needed to run one specialized graph, built exactly once.

    Thin by design: the artifact owns its pieces and forwards the calls
    the runtime makes per invocation (``bind_feeds`` /
    ``check_preconditions`` / ``repack_outputs``), so callers never
    reach around it to re-create executors or re-inspect the generator.

    ``lowered`` is the optional fourth-stage artifact (docs/lowering.md):
    a :class:`~repro.graph.lowering.LoweredProgram` built behind
    ``JanusConfig.lowering``.  When present, ``run_flat`` prefers it; the
    node-walking ``executor`` remains the always-correct fallback and
    the carrier of the binding/commit machinery the program shares.
    """

    __slots__ = ("generated", "executor", "signature", "node_count",
                 "compile_seconds", "lowered", "fused_ops",
                 "lowering_bailout", "payload", "portable_skip",
                 "from_disk")

    def __init__(self, generated, executor, signature=None,
                 compile_seconds=0.0, lowered=None, fused_ops=0,
                 lowering_bailout=None):
        self.generated = generated
        self.executor = executor
        self.signature = signature
        self.node_count = len(generated.graph.nodes)
        self.compile_seconds = compile_seconds
        self.lowered = lowered
        self.fused_ops = fused_ops
        self.lowering_bailout = lowering_bailout
        #: Pre-fusion pickle of ``generated``, captured by
        #: ``compile_generated(..., persist=True)`` for disk publication;
        #: consumed (once) via :meth:`take_payload`.
        self.payload = None
        #: Why the artifact could not be serialized (None = it could, or
        #: persistence was never requested).
        self.portable_skip = None
        #: True when this artifact was rebuilt from a disk-cache entry.
        self.from_disk = False

    def take_payload(self):
        """Hand off the serialized form (and release the bytes)."""
        payload = self.payload
        self.payload = None
        return payload

    @property
    def graph(self):
        return self.generated.graph

    def bind_feeds(self, args):
        return self.generated.bind_feeds(args)

    def check_preconditions(self, args):
        return self.generated.check_preconditions(args)

    def repack_outputs(self, flat_values):
        return self.generated.repack_outputs(flat_values)

    def run_flat(self, feeds):
        """Execute the precompiled schedule over already-bound feeds."""
        lowered = self.lowered
        if lowered is not None:
            return lowered.run(feeds)
        return self.executor.run(feeds)

    def __repr__(self):
        detail = "lowered, %d ops fused" % self.fused_ops \
            if self.lowered is not None else "node-walking"
        return "CompiledGraph(%s, %d nodes, %s, compiled in %.1f ms)" % (
            self.graph.name, self.node_count, detail,
            self.compile_seconds * 1e3)


class RegenerationSeed:
    """What an invalidated :class:`CompiledGraph` bequeaths its successor.

    When an assumption failure invalidates a cache entry, the old
    artifact still holds two things the regeneration can reuse instead
    of re-deriving from profile data: the bound argument specs of the
    previous graph (valid wherever the relaxation did not touch them)
    and the set of profiler sites whose assumptions were relaxed — the
    *dirty set* that tells the incremental generator which fragments
    must reconvert.  The seed is remembered per call signature by the
    :class:`~repro.janus.cache.GraphCache` and consumed (popped) by the
    next ``generate()`` for that signature.
    """

    __slots__ = ("compiled", "dirty_sites")

    def __init__(self, compiled, dirty_sites=frozenset()):
        self.compiled = compiled
        self.dirty_sites = frozenset(dirty_sites)

    @property
    def bound_arg_specs(self):
        """Arg specs the previous graph was specialized on (or None)."""
        return getattr(self.compiled.generated, "bound_arg_specs", None)


class CoExecArtifact:
    """The multi-fragment artifact behind a co-execution plan.

    A co-executed function does not own one :class:`CompiledGraph` — it
    owns an alternating schedule of symbolic fragments (each a full
    JanusFunction with its own :class:`~repro.janus.cache.GraphCache`
    of CompiledGraph artifacts, compiled through the same
    ``compile_generated`` pipeline) and imperative gaps.  This record
    is the introspection/invalidation handle over that whole family:
    ``janus-stats`` reads the converted-op ratio off it, and tearing a
    plan down invalidates every fragment cache in one sweep.
    """

    __slots__ = ("name", "segments", "fragment_functions",
                 "converted_ratio")

    def __init__(self, name, segments, fragment_functions,
                 converted_ratio):
        #: Owning janus.function name.
        self.name = name
        #: ``[("sym"|"gap", start_stmt, end_stmt), ...]`` — the current
        #: top-level partition, for reporting.
        self.segments = list(segments)
        #: The live fragment JanusFunctions (symbolic segments only).
        self.fragment_functions = list(fragment_functions)
        #: Weighted fraction of the function body covered by symbolic
        #: fragments (AST-node weighted; see docs/coexecution.md).
        self.converted_ratio = converted_ratio

    def compiled_graphs(self):
        """Every live CompiledGraph across all fragment caches."""
        out = []
        for jf in self.fragment_functions:
            for _sig, entry in jf.cache.entries():
                out.append(entry.compiled)
        return out

    def invalidate(self):
        """Invalidate every fragment's cached artifacts (counted)."""
        for jf in self.fragment_functions:
            jf.cache.invalidate_all()

    def stats(self):
        return {
            "fragments": len(self.fragment_functions),
            "gaps": sum(1 for kind, _a, _b in self.segments
                        if kind == "gap"),
            "converted_ratio": self.converted_ratio,
            "fragment_graphs": len(self.compiled_graphs()),
        }


def compile_generated(generated, config, signature=None, persist=False):
    """Build the :class:`CompiledGraph` artifact for a generated graph.

    This is the one place executor schedules (and with them the
    specialized guard/heap-read closures) are compiled on the JANUS
    path; everything downstream reuses the artifact.

    ``persist=True`` additionally snapshots the pre-fusion pickle of
    *generated* (when portable) so the caller can publish the artifact
    to the cross-process disk cache; the snapshot must happen here,
    before fusion rewrites the graph in place.
    """
    start = time.perf_counter()
    payload = None
    portable_skip = None
    if persist:
        try:
            payload = serialize_generated(generated)
        except UnportableArtifact as exc:
            portable_skip = exc.reason
            COUNTERS.inc("diskcache.store_skipped.%s" % exc.reason)
    lowering_on = getattr(config, "lowering", True)
    fused_ops = 0
    if lowering_on:
        # Fuse before the executor compiles so the schedule (and the
        # node-walking fallback) run the same fused graph — bit-for-bit
        # parity between the two run paths by construction.
        lower_start = time.perf_counter()
        with TRACER.span("janus", "lower", graph=generated.graph.name):
            fused_ops = lowering_mod.fuse_graph(generated.graph)
    executor = GraphExecutor(
        generated.graph, parallel=config.parallel_execution,
        heavy_threshold=getattr(config, "parallel_heavy_ops_threshold", 2),
        tensor_write_barrier=getattr(config, "tensor_write_barrier", True))
    lowered = None
    bailout = None
    if lowering_on:
        try:
            lowered = lowering_mod.lower_executor(executor)
        except lowering_mod.LoweringBailout as exc:
            bailout = exc.reason
        except Exception:  # defensive: lowering must never block compile
            bailout = "error"
        if lowered is not None:
            COUNTERS.inc("lowering.graphs_lowered")
        else:
            COUNTERS.inc("lowering.bailout.%s" % bailout)
        COUNTERS.add_time("janus.lower",
                          time.perf_counter() - lower_start)
    else:
        bailout = "disabled"
        COUNTERS.inc("lowering.bailout.disabled")
    elapsed = time.perf_counter() - start
    COUNTERS.inc("janus.graphs_compiled")
    COUNTERS.add_time("janus.compile", elapsed)
    compiled = CompiledGraph(generated, executor, signature=signature,
                             compile_seconds=elapsed, lowered=lowered,
                             fused_ops=fused_ops,
                             lowering_bailout=bailout)
    compiled.payload = payload
    compiled.portable_skip = portable_skip
    if TRACER.level:
        TRACER.instant("graphgen", "compiled", graph=generated.graph.name,
                       nodes=compiled.node_count,
                       compile_ms=round(elapsed * 1e3, 3),
                       lowered=lowered is not None, fused_ops=fused_ops,
                       lowering_bailout=bailout)
    return compiled


def load_compiled(payload, config, signature=None):
    """Rebuild a full CompiledGraph from a persisted payload.

    Runs the standard ``compile_generated`` pipeline (fuse → executor →
    lower) on the deserialized pre-fusion graph, so the result is
    indistinguishable from a freshly-compiled artifact apart from
    ``from_disk``.  Raises on corrupt payloads; the disk cache converts
    any raise into a counted miss.
    """
    generated = deserialize_generated(payload)
    compiled = compile_generated(generated, config, signature=signature)
    compiled.from_disk = True
    return compiled

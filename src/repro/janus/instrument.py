"""AST-level instrumentation for non-intrusive runtime profiling.

The paper modifies CPython to instrument at bytecode level (section 5);
the equivalent here rewrites the function's AST so that every profiling
event — branch direction, loop trip count, callee identity, attribute
access, return value — flows through a recorder object injected as the
``__janus_prof__`` global.  The rewritten clone shares the original's
globals and closure cells, so its behaviour (including nonlocal writes)
is identical to the original's; it is only ever used during the
profiling iterations.

Site identifiers are ``(function_key, lineno, col, kind)`` tuples, which
the graph generator later uses to look up profiled facts for the exact
syntactic element it is converting.

Paper correspondence: this is the profiling substrate of §4.1 — the
observation mechanism that feeds the speculative graph generator's
assumptions.  The events it records map onto the dynamic features of
§4.2: branch directions and trip counts for dynamic control flow
(§4.2.1), value observations on the specialization lattice for dynamic
types (§4.2.2), and attribute/subscript access sites for impure
functions (§4.2.3).  Functions whose source is unavailable raise
:class:`~repro.errors.NotConvertible` and stay on the §4.3 imperative
path.
"""

import ast
import copy
import inspect
import textwrap
import types
import weakref

from ..errors import NotConvertible

PROF_NAME = "__janus_prof__"

#: Parsed-AST memo: source parsing costs a visible slice of every
#: (re)generation, and the source of a live function cannot change, so
#: parse once per function object.  Weak keys let dynamically created
#: functions be collected normally.
_AST_CACHE = weakref.WeakKeyDictionary()


def get_function_ast(func, mutable=False):
    """Parse a function's source into an ``ast.FunctionDef`` node.

    The parse is memoized per function object.  Callers that mutate the
    returned tree (the profiler's instrumentation rewrite) must pass
    ``mutable=True`` to receive a private deep copy; the default shares
    the cached tree and must be treated as read-only.
    """
    target = getattr(func, "__func__", func)
    try:
        fdef = _AST_CACHE.get(target)
    except TypeError:           # unweakrefable callable: parse fresh
        fdef = None
        target = None
    if fdef is None:
        try:
            source = inspect.getsource(func)
        except (OSError, TypeError) as exc:
            raise NotConvertible("no source available for %r" % func,
                                 feature="source") from exc
        source = textwrap.dedent(source)
        module = ast.parse(source)
        fdef = module.body[0]
        # Unwrap decorators so re-compilation does not re-apply them.
        if isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fdef.decorator_list = []
        if isinstance(fdef, ast.AsyncFunctionDef):
            raise NotConvertible("async functions are imperative-only",
                                 feature="coroutine")
        if not isinstance(fdef, ast.FunctionDef):
            raise NotConvertible("expected a function definition",
                                 feature="source")
        if target is not None:
            _AST_CACHE[target] = fdef
    return copy.deepcopy(fdef) if mutable else fdef


def function_key(func):
    """A stable identifier for a Python function."""
    target = getattr(func, "__func__", func)
    code = target.__code__
    return "%s:%d" % (code.co_filename, code.co_firstlineno)


class _InstrumentTransformer(ast.NodeTransformer):
    """Rewrites a function body to report events to ``__janus_prof__``."""

    def __init__(self, func_key):
        self.func_key = func_key

    def _site(self, node, kind):
        return (self.func_key, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), kind)

    def _prof_call(self, method, site, args):
        return ast.Call(
            func=ast.Attribute(value=ast.Name(id=PROF_NAME, ctx=ast.Load()),
                               attr=method, ctx=ast.Load()),
            args=[_const(site)] + args, keywords=[])

    # Nested defs and lambdas are instrumented in place (their sites use
    # the enclosing function's source coordinates, matching what the graph
    # generator sees when it re-parses the same source).  Classes are not:
    # inline class definitions are imperative-only anyway (section 4.3.2).
    def visit_AsyncFunctionDef(self, node):
        return node

    def visit_ClassDef(self, node):
        return node

    def visit_If(self, node):
        self.generic_visit(node)
        node.test = self._prof_call("branch", self._site(node, "if"),
                                    [node.test])
        return node

    def visit_While(self, node):
        self.generic_visit(node)
        node.test = self._prof_call("while_test", self._site(node, "while"),
                                    [node.test])
        return node

    def visit_For(self, node):
        self.generic_visit(node)
        node.iter = self._prof_call("loop", self._site(node, "for"),
                                    [node.iter])
        return node

    def visit_IfExp(self, node):
        self.generic_visit(node)
        node.test = self._prof_call("branch", self._site(node, "ifexp"),
                                    [node.test])
        return node

    def visit_Call(self, node):
        self.generic_visit(node)
        node.func = self._prof_call("call", self._site(node, "call"),
                                    [node.func])
        return node

    def visit_Attribute(self, node):
        self.generic_visit(node)
        if isinstance(node.ctx, ast.Load):
            return self._prof_call("attr", self._site(node, "attr"),
                                   [node.value, _const(node.attr)])
        return node

    def visit_Subscript(self, node):
        self.generic_visit(node)
        if isinstance(node.ctx, ast.Load):
            return self._prof_call("subscr", self._site(node, "subscr"),
                                   [node.value, _slice_expr(node.slice)])
        return node

    def visit_Return(self, node):
        self.generic_visit(node)
        value = node.value if node.value is not None else _const(None)
        node.value = self._prof_call("ret", self._site(node, "return"),
                                     [value])
        return node


def _const(value):
    return ast.Constant(value=value)


def _slice_expr(slice_node):
    """Reify a subscript index as an expression for the recorder.

    Plain indices pass through; slices are reported as a probe marker so
    the recorder can skip value recording (slicing is handled statically
    by the graph generator).
    """
    if isinstance(slice_node, ast.Slice):
        return ast.Call(func=ast.Name(id="slice", ctx=ast.Load()),
                        args=[s or _const(None) for s in
                              (slice_node.lower, slice_node.upper,
                               slice_node.step)],
                        keywords=[])
    return slice_node


def instrument_function(func, recorder):
    """Build an instrumented clone of ``func`` reporting to ``recorder``.

    The clone shares the original function's globals dict (augmented with
    the recorder) and its closure cells.
    """
    fdef = get_function_ast(func, mutable=True)
    key = function_key(func)
    transformer = _InstrumentTransformer(key)
    new_body = [transformer.visit(stmt) for stmt in fdef.body]
    fdef.body = new_body
    return compile_function_def(func, fdef,
                                extra_globals={PROF_NAME: recorder})


def compile_function_def(func, fdef, extra_globals=None):
    """Compile an (edited) FunctionDef into a callable cloning ``func``.

    Free variables are preserved by wrapping the def in a factory whose
    parameters shadow them, then rebuilding the inner function object
    with the original closure cells in the right order.
    """
    target = getattr(func, "__func__", func)
    freevars = target.__code__.co_freevars
    module = ast.Module(body=[], type_ignores=[])
    if freevars:
        factory_args = ast.arguments(
            posonlyargs=[], args=[ast.arg(arg=v) for v in freevars],
            vararg=None, kwonlyargs=[], kw_defaults=[], kwarg=None,
            defaults=[])
        # Reference each freevar inside the factory so they become cells.
        touch = [ast.Assign(targets=[ast.Name(id="__janus_touch__",
                                              ctx=ast.Store())],
                            value=ast.Tuple(
                                elts=[ast.Name(id=v, ctx=ast.Load())
                                      for v in freevars],
                                ctx=ast.Load()))]
        factory = ast.FunctionDef(
            name="__janus_factory__", args=factory_args,
            body=[fdef] + touch + [
                ast.Return(value=ast.Name(id=fdef.name, ctx=ast.Load()))],
            decorator_list=[], returns=None)
        module.body = [factory]
    else:
        module.body = [fdef]
    ast.fix_missing_locations(module)
    filename = "<janus:%s>" % target.__code__.co_filename
    code = compile(module, filename, "exec")

    globs = dict(target.__globals__)
    if extra_globals:
        globs.update(extra_globals)
    namespace = {}
    exec(code, globs, namespace)

    if freevars:
        factory_fn = namespace["__janus_factory__"]
        inner_code = None
        for const in factory_fn.__code__.co_consts:
            if isinstance(const, types.CodeType) and \
                    const.co_name == fdef.name:
                inner_code = const
                break
        if inner_code is None:
            raise NotConvertible("failed to locate instrumented code",
                                 feature="closure")
        cell_by_name = dict(zip(target.__code__.co_freevars,
                                target.__closure__ or ()))
        closure = tuple(cell_by_name[name]
                        for name in inner_code.co_freevars)
        clone = types.FunctionType(inner_code, globs, target.__name__,
                                   target.__defaults__, closure)
    else:
        clone = namespace[fdef.name]
        clone.__defaults__ = target.__defaults__
    clone.__kwdefaults__ = target.__kwdefaults__
    if hasattr(func, "__self__"):
        clone = types.MethodType(clone, func.__self__)
    return clone

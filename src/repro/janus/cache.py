"""The graph cache (paper figure 2).

Compiled graphs are cached per *call signature* — the type-level summary
of the arguments (tensor dtype/rank, Python value types).  Retrieval
validates the entry's precheckable assumptions (constant values, shape
specs, object identities); a failed precheck is a cache miss, after which
the entry is relaxed and regenerated (figure 2, check 1).

Two properties matter for long-running programs:

* **Bounded size** — workloads that keep producing novel signatures
  (e.g. TreeNN, one graph per parse-tree topology; paper §6.3.2) would
  otherwise grow the cache without limit.  The cache is an LRU: storing
  past ``max_entries`` evicts the least-recently-retrieved artifact.
* **Lifetime accounting** — hit/miss/assumption-failure totals live on
  the cache itself, updated through ``record_hit`` / ``record_miss`` /
  ``record_failure``.  Per-entry counts still exist for introspection,
  but invalidating or evicting an entry no longer erases history, so
  ``cache_stats()`` reflects everything that ever happened.

Population and eviction emit ``cache_store`` / ``cache_evict`` /
``cache_invalidate`` trace events (retrieval outcomes — ``cache_hit`` /
``cache_miss`` — are emitted by :mod:`repro.janus.api`, which knows the
precheck result); see :mod:`repro.observability`.

The cache is **thread-safe**: every structural operation (lookup / store
/ invalidate / seed bookkeeping) and every lifetime-total update runs
under one narrow internal lock, so N concurrent callers share a
function's cache without torn LRU state or lost counts.  Entries handed
out by ``lookup`` stay valid after a concurrent ``invalidate`` — the
caller pins the artifact it retrieved (RCU-style; see
:mod:`repro.janus.concurrency`), it just won't be found again.
"""

import threading
from collections import OrderedDict

from ..imperative.eager import Tensor
from ..observability import COUNTERS, HEALTH, METRICS, TRACER
from ..tensor import TensorValue
from . import specialization as spec

#: Bound on the per-cache tensor-signature memo (cleared wholesale
#: beyond it — entries are a handful of words, so this is generous).
_SIG_MEMO_MAX = 4096


class CacheEntry:
    """One compiled graph artifact plus its per-entry retrieval counts."""

    __slots__ = ("compiled", "hits", "misses", "failures", "dirty")

    def __init__(self, compiled):
        self.compiled = compiled
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.dirty = False

    @property
    def generated(self):
        return self.compiled.generated

    @property
    def executor(self):
        return self.compiled.executor


class GraphCache:
    """Signature-keyed bounded LRU cache of compiled graph artifacts."""

    #: Bound on remembered regeneration seeds (invalidation is rare, so
    #: this stays tiny; oldest dropped beyond it).
    MAX_SEEDS = 8

    def __init__(self, max_entries=None):
        #: Owning janus.function name for health attribution (set by
        #: the JanusFunction constructor; None for standalone use).
        self.owner = None
        #: One lock for entries, seeds, and lifetime totals.  RLock:
        #: ``store`` may evict (and record health) while already inside
        #: the critical section.
        self._lock = threading.RLock()
        self._entries = OrderedDict()
        #: signature -> RegenerationSeed left behind by the invalidated
        #: entry for that signature; consumed by the next regeneration.
        self._seeds = OrderedDict()
        #: Maximum live entries (None = unbounded).  May be adjusted at
        #: any time; enforced on the next ``store``.
        self.max_entries = max_entries
        # Lifetime totals — survive invalidate/evict/clear.
        self.total_hits = 0
        self.total_misses = 0
        self.total_failures = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        #: id(TensorValue) -> (token, version, dtype, ndim): memoized
        #: signature tokens for *tracked* (write-barrier-sealed) values.
        #: The validation triple fully determines the token, so an id
        #: reused by a different value can never yield a wrong result.
        self._sig_memo = {}

    def signature_of(self, args):
        """The type-level cache key for a positional-argument tuple.

        Tensor arguments take a fast path: their signature is exactly
        ``("T", dtype name, rank)``, computable without building a
        ValueSpec — this runs on *every* warm dispatch, and workloads
        like TreeNN pay it per tree node.  Everything else goes through
        :func:`repro.janus.specialization.observe`.
        """
        out = []
        for a in args:
            if type(a) is Tensor:
                out.append(self._tensor_signature(a.value))
            elif type(a) is TensorValue:
                out.append(self._tensor_signature(a))
            else:
                out.append(spec.observe(a).signature())
        return tuple(out)

    def _tensor_signature(self, tv):
        if tv.tracked:
            # Sealed values: (identity, version) pins content, so the
            # memoized token is valid while both match (and the triple
            # re-derives it even across id reuse).
            memo = self._sig_memo
            hit = memo.get(id(tv))
            if hit is not None and hit[1] == tv.version \
                    and hit[2] is tv.dtype and hit[3] == tv.array.ndim:
                return hit[0]
            token = ("T", tv.dtype.name, tv.array.ndim)
            if len(memo) >= _SIG_MEMO_MAX:
                memo.clear()
            memo[id(tv)] = (token, tv.version, tv.dtype, tv.array.ndim)
            return token
        return ("T", tv.dtype.name, tv.array.ndim)

    def lookup(self, signature):
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                self._entries.move_to_end(signature)
            return entry

    # -- outcome accounting -------------------------------------------------

    def record_hit(self, entry):
        with self._lock:
            entry.hits += 1
            self.total_hits += 1
        COUNTERS.inc("cache.hits")

    def record_miss(self, entry=None):
        with self._lock:
            if entry is not None:
                entry.misses += 1
            self.total_misses += 1
        COUNTERS.inc("cache.misses")

    def record_failure(self, entry=None):
        with self._lock:
            if entry is not None:
                entry.failures += 1
            self.total_failures += 1
        COUNTERS.inc("cache.assumption_failures")

    # -- population ----------------------------------------------------------

    def store(self, signature, entry):
        with self._lock:
            self._entries[signature] = entry
            self._entries.move_to_end(signature)
            self.stores += 1
            COUNTERS.inc("cache.stores")
            if TRACER.level:
                TRACER.instant("cache_store", entry.generated.graph.name,
                               signature=repr(signature),
                               entries=len(self._entries))
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    evicted_sig, evicted = self._entries.popitem(last=False)
                    self.evictions += 1
                    COUNTERS.inc("cache.evictions")
                    if METRICS.enabled and self.owner is not None:
                        HEALTH.function(self.owner).record_cache_eviction()
                    if TRACER.level:
                        TRACER.instant("cache_evict",
                                       evicted.generated.graph.name,
                                       signature=repr(evicted_sig),
                                       hits=evicted.hits,
                                       entries=len(self._entries))

    def invalidate(self, signature):
        """Drop one entry.  Lifetime totals are unaffected (they are
        accumulated through ``record_*`` at outcome time, not summed over
        live entries), so invalidation no longer erases history."""
        with self._lock:
            entry = self._entries.pop(signature, None)
            if entry is not None:
                self.invalidations += 1
                COUNTERS.inc("cache.invalidations")
                if METRICS.enabled and self.owner is not None:
                    HEALTH.function(self.owner).record_cache_invalidation()
                if TRACER.level:
                    TRACER.instant("cache_invalidate",
                                   entry.generated.graph.name,
                                   signature=repr(signature),
                                   hits=entry.hits, misses=entry.misses,
                                   failures=entry.failures)
            return entry

    # -- regeneration seeds ---------------------------------------------------

    def remember_seed(self, signature, seed):
        """Keep the invalidated entry's artifact around for regeneration.

        The next ``take_seed`` for the same signature pops it; seeds
        beyond ``MAX_SEEDS`` signatures drop oldest-first so a workload
        churning through signatures cannot pin arbitrarily many dead
        graphs alive.
        """
        with self._lock:
            self._seeds[signature] = seed
            self._seeds.move_to_end(signature)
            while len(self._seeds) > self.MAX_SEEDS:
                self._seeds.popitem(last=False)

    def take_seed(self, signature):
        """Pop and return the seed for *signature* (None if absent)."""
        with self._lock:
            return self._seeds.pop(signature, None)

    def invalidate_all(self):
        """Drop every live entry, with per-entry invalidation accounting.

        Used by the co-execution planner when a plan is torn down (all
        fragment artifacts become unreachable at once); unlike
        :meth:`clear` this counts each drop so lifetime stats and trace
        events stay truthful.
        """
        with self._lock:
            for signature in list(self._entries):
                self.invalidate(signature)
            self._seeds.clear()

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._seeds.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def entries(self):
        """Live entries in LRU order (oldest first); for introspection."""
        with self._lock:
            return list(self._entries.items())

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "lowered_entries": sum(
                    1 for e in self._entries.values()
                    if getattr(e.compiled, "lowered", None) is not None),
                "hits": self.total_hits,
                "misses": self.total_misses,
                "assumption_failures": self.total_failures,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

"""The graph cache (paper figure 2).

Generated graphs are cached per *call signature* — the type-level summary
of the arguments (tensor dtype/rank, Python value types).  Retrieval
validates the entry's precheckable assumptions (constant values, shape
specs, object identities); a failed precheck is a cache miss, after which
the entry is relaxed and regenerated (figure 2, check 1).

Cache population and eviction emit ``cache_store`` / ``cache_invalidate``
trace events (retrieval outcomes — ``cache_hit`` / ``cache_miss`` — are
emitted by :mod:`repro.janus.api`, which knows the precheck result); see
:mod:`repro.observability`.
"""

from ..observability import TRACER


class CacheEntry:
    """One generated graph plus everything needed to run and re-check it."""

    __slots__ = ("generated", "executor", "hits", "misses", "failures",
                 "dirty")

    def __init__(self, generated, executor):
        self.generated = generated
        self.executor = executor
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.dirty = False


class GraphCache:
    """Signature-keyed cache of speculatively-generated graphs."""

    def __init__(self):
        self._entries = {}

    def signature_of(self, args):
        from . import specialization as spec
        return tuple(spec.observe(a).signature() for a in args)

    def lookup(self, signature):
        return self._entries.get(signature)

    def store(self, signature, entry):
        self._entries[signature] = entry
        if TRACER.level:
            TRACER.instant("cache_store", entry.generated.graph.name,
                           signature=repr(signature),
                           entries=len(self._entries))

    def invalidate(self, signature):
        entry = self._entries.pop(signature, None)
        if entry is not None and TRACER.level:
            TRACER.instant("cache_invalidate", entry.generated.graph.name,
                           signature=repr(signature),
                           hits=entry.hits, misses=entry.misses,
                           failures=entry.failures)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    def stats(self):
        return {
            "entries": len(self._entries),
            "hits": sum(e.hits for e in self._entries.values()),
            "misses": sum(e.misses for e in self._entries.values()),
            "assumption_failures": sum(e.failures
                                       for e in self._entries.values()),
        }

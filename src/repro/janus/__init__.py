"""JANUS: speculative symbolic graph execution of imperative programs.

The paper's primary contribution — see :mod:`repro.janus.api` for the
execution model and :mod:`repro.janus.graphgen` for the conversion rules.
"""

from .api import JanusFunction, function
from .config import (JanusConfig, get_config, set_config, ABLATION_STAGES)
from .profiler import Profiler
from .graphgen import GraphGenerator, GeneratedGraph
from .compiled import CompiledGraph, compile_generated
from .cache import CacheEntry, GraphCache
from . import specialization
from . import coverage

__all__ = [
    "JanusFunction", "function",
    "JanusConfig", "get_config", "set_config", "ABLATION_STAGES",
    "Profiler", "GraphGenerator", "GeneratedGraph",
    "CompiledGraph", "compile_generated", "CacheEntry", "GraphCache",
    "specialization", "coverage",
]

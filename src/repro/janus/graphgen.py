"""Speculative symbolic graph generation (paper section 4).

``GraphGenerator`` converts the AST of an imperative DL program into a
symbolic dataflow graph, using the profile gathered by
:class:`~repro.janus.profiler.Profiler` to resolve dynamic features:

* **Dynamic control flow** (4.2.1) — ``if``/``while``/``for`` convert to
  functional cond/while ops; when the profile shows a stable direction or
  trip count (and +UNRL is enabled) the construct is *unrolled* behind an
  AssertOp guarding the speculative assumption.  Function calls inline;
  calls on a cycle of the profiled call graph become recursive ``invoke``
  nodes.
* **Dynamic types** (4.2.2) — placeholder dtypes/shapes come from the
  specialization lattice; non-numerical values travel as PyRef edges.
* **Impure functions** (4.2.3) — object attribute and subscript accesses
  become ``py_get_*``/``py_set_*`` nodes with deferred, all-or-nothing
  writeback; heap reads carry profiled type assumptions validated at
  runtime.

Any construct outside the supported subset raises
:class:`~repro.errors.NotConvertible`, routing the function to the
imperative executor (4.3).

Paper correspondence: this module is §4.1 (the speculative graph
generator itself — AST-to-graph conversion under profiled assumptions,
with AssertOp guards) and the conversion rules of §4.2.1–4.2.3 listed
above; the permanent imperative-only routing on ``NotConvertible`` is
the §4.3 fallback path.  Each completed generation emits a ``graphgen``
trace event with node counts (:mod:`repro.observability`); the spans
around generation are recorded by :mod:`repro.janus.api`.

In the execution pipeline (instrument → graphgen → compile → lower,
docs/architecture.md) this module is stage 2; its output graph is
immediately compiled into a :class:`~repro.janus.compiled.CompiledGraph`
and lowered (:mod:`repro.graph.lowering`) by ``compile_generated``.
"""

import ast
import types

import numpy as np

from ..errors import NotConvertible
from ..observability import HEALTH, METRICS
from ..graph.builder import GraphBuilder
from ..graph.core import GraphFunction, NodeOutput
from ..graph import autodiff
from ..graph.passes import PassManager
from ..imperative.eager import Tensor
from ..imperative.variable import Variable
from ..ops import api
from ..tensor import TensorValue, PyRef, dtype as dtypes
from ..tensor.shape import Shape
from . import fragments as frag_mod
from . import specialization as spec
from .coverage import check_convertible
from .instrument import get_function_ast, function_key
from .whitelist import (handler_for, is_whitelisted, STRUCTURAL_BUILTINS,
                        MATH_CONST_FUNCS)


# ---------------------------------------------------------------------------
# symbolic values
# ---------------------------------------------------------------------------

class Const:
    """A Python value fully known at graph-build time."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class SymSeq:
    """A list/tuple with build-time-known structure of symbolic elements."""

    __slots__ = ("elements", "is_tuple")

    def __init__(self, elements, is_tuple=False):
        self.elements = list(elements)
        self.is_tuple = is_tuple

    def __repr__(self):
        return "SymSeq(%d%s)" % (len(self.elements),
                                 ", tuple" if self.is_tuple else "")


class SymDict:
    """A dict with constant keys and symbolic values."""

    __slots__ = ("entries",)

    def __init__(self, entries):
        self.entries = dict(entries)


class SymFunc:
    """A nested def / lambda, inlined at call sites."""

    __slots__ = ("fdef", "env", "owner_func", "name")

    def __init__(self, fdef, env, owner_func, name):
        self.fdef = fdef
        self.env = env
        self.owner_func = owner_func
        self.name = name


class SymRange:
    """A range over (possibly symbolic) scalar bounds."""

    __slots__ = ("start", "stop", "step")

    def __init__(self, start, stop, step):
        self.start = start
        self.stop = stop
        self.step = step


class StackedList:
    """A list of same-shaped tensors lowered to one stacked tensor.

    Appears when a Python list must cross a dynamic-loop boundary; the
    accumulator tensor grows along axis 0 (a TensorArray in TF terms).
    """

    __slots__ = ("tensor",)

    def __init__(self, tensor):
        self.tensor = tensor


class _ReturnValue(Exception):
    """Internal control-flow signal carrying a converted return value."""

    def __init__(self, value):
        super().__init__("return")
        self.value = value


class _BreakSignal(Exception):
    """A ``break`` reached on a statically-resolved path."""


class _ContinueSignal(Exception):
    """A ``continue`` reached on a statically-resolved path."""


_MISSING = object()


# ---------------------------------------------------------------------------
# flatten / rebuild of structured symbolic values
# ---------------------------------------------------------------------------

def flatten_value(value, flat):
    """Flatten a symbolic value into graph edges; return a structure spec."""
    if isinstance(value, NodeOutput):
        flat.append(value)
        return ("edge",)
    if isinstance(value, StackedList):
        flat.append(value.tensor)
        return ("stacked",)
    if isinstance(value, SymSeq):
        return ("seq", value.is_tuple,
                tuple(flatten_value(e, flat) for e in value.elements))
    if isinstance(value, SymDict):
        keys = tuple(value.entries.keys())
        return ("dict", keys,
                tuple(flatten_value(value.entries[k], flat) for k in keys))
    if isinstance(value, Const):
        return ("const", value.value)
    if value is None:
        return ("const", None)
    raise NotConvertible("value %r cannot cross a graph boundary" % (value,),
                         feature="boundary")


def rebuild_value(structure, flat_iter):
    kind = structure[0]
    if kind == "edge":
        return next(flat_iter)
    if kind == "stacked":
        return StackedList(next(flat_iter))
    if kind == "seq":
        _, is_tuple, parts = structure
        return SymSeq([rebuild_value(p, flat_iter) for p in parts],
                      is_tuple=is_tuple)
    if kind == "dict":
        _, keys, parts = structure
        return SymDict({k: rebuild_value(p, flat_iter)
                        for k, p in zip(keys, parts)})
    if kind == "const":
        return Const(structure[1])
    raise NotConvertible("bad structure %r" % (structure,))


def _structure_token(structure, keep=None):
    """Hashable digest of a flatten_value structure spec.

    Const leaves are burned into converted fragments by value, so they
    digest by content (via fragments.value_digest); edge leaves carry no
    value — their shapes/dtypes are validated through the capture plan.
    """
    kind = structure[0]
    if kind in ("edge", "stacked"):
        return (kind,)
    if kind == "seq":
        return ("seq", structure[1],
                tuple(_structure_token(p, keep) for p in structure[2]))
    if kind == "dict":
        return ("dict", structure[1],
                tuple(_structure_token(p, keep) for p in structure[2]))
    if kind == "const":
        return ("const", frag_mod.value_digest(structure[1], keep))
    return ("?",)


def structures_compatible(a, b):
    if a[0] != b[0]:
        return False
    if a[0] == "seq":
        return a[1] == b[1] and len(a[2]) == len(b[2]) and \
            all(structures_compatible(x, y) for x, y in zip(a[2], b[2]))
    if a[0] == "dict":
        return a[1] == b[1] and \
            all(structures_compatible(x, y) for x, y in zip(a[2], b[2]))
    if a[0] == "const":
        va, vb = a[1], b[1]
        if isinstance(va, (list, tuple, dict, np.ndarray)):
            return type(va) is type(vb) and np.array_equal(va, vb) \
                if isinstance(va, np.ndarray) else va == vb
        return va == vb or (va is vb)
    return True


# ---------------------------------------------------------------------------
# AST analysis helpers
# ---------------------------------------------------------------------------

def assigned_names(stmts):
    """Names bound anywhere in a statement list (no nested defs)."""
    names = set()

    class _V(ast.NodeVisitor):
        def visit_Name(self, node):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                names.add(node.id)

        def visit_FunctionDef(self, node):
            names.add(node.name)

        def visit_Lambda(self, node):
            pass

    v = _V()
    for s in stmts:
        v.visit(s)
    return names


def read_names(stmts):
    names = set()

    class _V(ast.NodeVisitor):
        def visit_Name(self, node):
            if isinstance(node.ctx, ast.Load):
                names.add(node.id)

    v = _V()
    for s in stmts:
        v.visit(s)
    return names


def always_returns(stmts):
    """Conservative: does every path through ``stmts`` hit a return/raise?"""
    for stmt in stmts:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return True
        if isinstance(stmt, ast.If):
            if stmt.orelse and always_returns(stmt.body) and \
                    always_returns(stmt.orelse):
                return True
    return False


def contains_raise(stmts):
    found = []

    class _V(ast.NodeVisitor):
        def visit_Raise(self, node):
            found.append(node)

        def visit_FunctionDef(self, node):
            pass

        def visit_Lambda(self, node):
            pass

    v = _V()
    for s in stmts:
        v.visit(s)
    return bool(found)


_BINOP_API = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.MatMult: "matmul",
}

_CMP_API = {
    ast.Eq: "equal", ast.NotEq: "not_equal", ast.Lt: "less",
    ast.LtE: "less_equal", ast.Gt: "greater", ast.GtE: "greater_equal",
}

_PY_BINOP = {
    ast.Add: lambda a, b: a + b, ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b, ast.Div: lambda a, b: a / b,
    ast.FloorDiv: lambda a, b: a // b, ast.Mod: lambda a, b: a % b,
    ast.Pow: lambda a, b: a ** b,
}

_PY_CMP = {
    ast.Eq: lambda a, b: a == b, ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b, ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b, ast.GtE: lambda a, b: a >= b,
    ast.Is: lambda a, b: a is b, ast.IsNot: lambda a, b: a is not b,
    ast.In: lambda a, b: a in b, ast.NotIn: lambda a, b: a not in b,
}


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------

class GeneratedGraph:
    """The product of conversion: graph + binding plan + assumptions."""

    def __init__(self, graph, arg_plan, output_structure, prechecks,
                 variables):
        self.graph = graph
        self.arg_plan = arg_plan          # list of ("arg", i) / ("item", i, j)
        self.output_structure = output_structure
        self.prechecks = prechecks        # list of (describe, check_fn)
        self.variables = variables
        #: Node count before the optimization passes ran (compile-time
        #: metadata surfaced through CompiledGraph / trace events).
        self.nodes_raw = len(graph.nodes)
        #: The argument specs this graph was specialized on; handed to
        #: the next regeneration as a RegenerationSeed (None until
        #: generate() attaches them).
        self.bound_arg_specs = None

    def bind_feeds(self, args):
        feeds = []
        for path in self.arg_plan:
            if path[0] == "arg":
                feeds.append(args[path[1]])
            else:
                feeds.append(args[path[1]][path[2]])
        return feeds

    def check_preconditions(self, args):
        """Cache-retrieval assumption validation (figure 2, check 1)."""
        for _desc, check in self.prechecks:
            if not check(args):
                return False
        return True

    def repack_outputs(self, flat_values):
        from ..graph.executor import _externalize
        it = iter(flat_values)

        def build(structure):
            kind = structure[0]
            if kind in ("edge", "stacked"):
                return _externalize(next(it))
            if kind == "seq":
                items = [build(p) for p in structure[2]]
                return tuple(items) if structure[1] else items
            if kind == "dict":
                return {k: build(p)
                        for k, p in zip(structure[1], structure[2])}
            if kind == "const":
                return structure[1]
            raise NotConvertible("bad output structure")

        return build(self.output_structure)


class GraphGenerator:
    """Converts one profiled function into a :class:`GeneratedGraph`."""

    def __init__(self, func, profiler, config, optimizer=None,
                 signature=None, fragments=None, dirty_sites=frozenset(),
                 seed=None):
        self.func = func
        self.profiler = profiler
        self.config = config
        self.optimizer = optimizer
        self.signature = signature
        self.builder = None
        self.prechecks = []
        self.graph_functions = {}    # function_key -> GraphFunction
        self.recursive_keys = self._find_recursive_keys()
        #: FragmentCache for incremental regeneration (None = full
        #: reconversion, the pre-fragment behaviour).
        self.fragments = fragments
        #: Profiler sites whose assumptions were just relaxed: fragments
        #: depending on them must reconvert.
        self.dirty_sites = frozenset(dirty_sites)
        #: RegenerationSeed from the invalidated predecessor (or None).
        self.seed = seed
        self._frag_stack = []        # active FragmentRecorders, innermost last
        self.fragments_reused = 0
        self.fragments_reconverted = 0
        self.specs_seeded = 0

    # -- call-graph cycle analysis (invoke vs inline) ------------------------

    def _find_recursive_keys(self):
        edges = {}
        for site, entry in self.profiler.sites.items():
            if entry.kind != "call":
                continue
            src = site[0]
            for callee in entry.callees:
                if isinstance(callee, types.FunctionType) and \
                        not is_whitelisted(callee):
                    edges.setdefault(src, set()).add(function_key(callee))
        recursive = set()
        for start in edges:
            stack = list(edges.get(start, ()))
            seen = set()
            while stack:
                key = stack.pop()
                if key == start:
                    recursive.add(start)
                    break
                if key in seen:
                    continue
                seen.add(key)
                stack.extend(edges.get(key, ()))
        return recursive

    # -- entry point ------------------------------------------------------------

    def generate(self):
        target = getattr(self.func, "__func__", self.func)
        fdef = get_function_ast(target)
        check_convertible(fdef)
        self.builder = GraphBuilder(name=target.__name__)
        arg_plan = []
        with self.builder:
            env = self._bind_arguments(fdef, arg_plan)
            converter = _FunctionConverter(self, target, env)
            try:
                converter.convert_block(fdef.body)
                result = Const(None)
            except _ReturnValue as ret:
                result = ret.value
            flat = []
            structure = flatten_value(result, flat)
            if self.optimizer is not None:
                structure, flat = self._attach_training(result, structure,
                                                        flat)
            self.builder.mark_outputs(flat)
        graph = self.builder.graph
        nodes_before = len(graph.nodes)
        from ..observability import COUNTERS, TRACER
        if self.config.optimize_graph:
            with COUNTERS.timer("graphgen.optimize"):
                PassManager().run(graph)
        COUNTERS.inc("janus.graphs_generated")
        if self.fragments is not None:
            if self.fragments_reused:
                COUNTERS.inc("graphgen.fragments_reused",
                             self.fragments_reused)
            if self.fragments_reconverted:
                COUNTERS.inc("graphgen.fragments_reconverted",
                             self.fragments_reconverted)
            if self.specs_seeded:
                COUNTERS.inc("graphgen.specs_seeded", self.specs_seeded)
            if TRACER.level:
                TRACER.instant("graphgen", "incremental", graph=graph.name,
                               fragments_reused=self.fragments_reused,
                               fragments_reconverted=
                               self.fragments_reconverted,
                               specs_seeded=self.specs_seeded,
                               dirty_sites=len(self.dirty_sites))
        if TRACER.level:
            TRACER.instant("graphgen", "generated", graph=graph.name,
                           nodes_raw=nodes_before,
                           nodes_optimized=len(graph.nodes),
                           prechecks=len(self.prechecks),
                           training=self.optimizer is not None)
        generated = GeneratedGraph(graph, arg_plan, structure,
                                   self.prechecks, graph.outputs and None)
        generated.nodes_raw = nodes_before
        generated.bound_arg_specs = getattr(self, "_bound_specs", None)
        return generated

    def _attach_training(self, result, structure, flat):
        """Append autodiff + optimizer update ops (training functions)."""
        loss = None
        if isinstance(result, NodeOutput):
            loss = result
        elif isinstance(result, SymSeq) and result.elements and \
                isinstance(result.elements[0], NodeOutput):
            loss = result.elements[0]
        if loss is None or loss.dtype is None or not loss.dtype.is_floating:
            raise NotConvertible("training function must return a float "
                                 "loss tensor", feature="training")
        var_grads = autodiff.add_training_gradients(self.builder, loss)
        pairs = [(g, v) for v, g in var_grads.items()]
        self.optimizer.apply_gradients(pairs)
        return structure, flat

    # -- argument binding ----------------------------------------------------------

    def _bind_arguments(self, fdef, arg_plan):
        args = fdef.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            raise NotConvertible("*args/**kwargs signatures are "
                                 "imperative-only", feature="signature")
        specs = None
        if self.signature is not None:
            specs = self.profiler.arg_specs_for(self.signature)
        if specs is None:
            specs = self.profiler.arg_specs or []
        specs = self._seed_arg_specs(specs)
        self._bound_specs = list(specs)
        if self.is_method():
            names = [a.arg for a in args.args]
        else:
            names = [a.arg for a in args.args]
        if len(specs) != len(names):
            raise NotConvertible("profiled arity %d != signature %d"
                                 % (len(specs), len(names)),
                                 feature="signature")
        env = {}
        for i, (name, sp) in enumerate(zip(names, specs)):
            env[name] = self._bind_one_arg(i, name, sp, arg_plan)
        return env

    def is_method(self):
        return hasattr(self.func, "__self__")

    def _bind_one_arg(self, index, name, sp, arg_plan):
        cfg = self.config
        if sp is None or sp.kind == spec.BOTTOM:
            raise NotConvertible("argument %r has no stable spec" % name,
                                 feature="argument")
        if sp.kind == spec.CONST_TENSOR and cfg.specialize_types:
            value = sp.value
            self._add_precheck(
                "arg %d constant" % index,
                spec.ArgConstTensor(index, value))
            return self.builder.constant(TensorValue.of(value))
        if sp.is_tensor_like:
            # Shapes are part of the basic type assumption (checked at
            # cache retrieval); +SPCN additionally burns stable *values*
            # into the graph as constants.
            shape = sp.shape
            ph = self.builder.placeholder("arg_%d_%s" % (index, name),
                                          shape=shape, dtype=sp.dtype)
            arg_plan.append(("arg", index))
            check_spec = spec.ValueSpec(spec.TENSOR, dtype=sp.dtype,
                                        shape=shape)
            self._add_precheck(
                "arg %d tensor spec" % index,
                spec.ArgSpecMatches(index, check_spec))
            return ph
        if sp.kind == spec.NONE:
            return Const(None)
        if sp.kind == spec.CONST_PY:
            value = sp.value
            self._add_precheck(
                "arg %d const" % index,
                spec.ArgEquals(index, value))
            return Const(value)
        if sp.kind == spec.CALLABLE:
            target = sp.value
            self._add_precheck(
                "arg %d callee identity" % index,
                spec.ArgCallableIs(index, target))
            return Const(target)
        if sp.kind == spec.VARIABLE:
            var = sp.value
            self._add_precheck(
                "arg %d variable identity" % index,
                spec.ArgIsObject(index, var))
            return Const(var)
        if sp.kind == spec.PYOBJ:
            if sp.value is not None:
                obj = sp.value
                self._add_precheck(
                    "arg %d object identity" % index,
                    spec.ArgIsObject(index, obj))
                return Const(obj)
            py_type = sp.py_type
            self._add_precheck(
                "arg %d object type" % index,
                spec.ArgTypeIs(index, py_type))
            ph = self.builder.placeholder("arg_%d_%s" % (index, name),
                                          shape=(), dtype=None)
            arg_plan.append(("arg", index))
            return ph
        if sp.kind == spec.LIST:
            elements = []
            n = len(sp.elements)
            self._add_precheck(
                "arg %d sequence length" % index,
                spec.ArgSeqLen(index, n))
            for j, esp in enumerate(sp.elements):
                if esp.is_tensor_like:
                    shape = esp.shape
                    ph = self.builder.placeholder(
                        "arg_%d_%s_%d" % (index, name, j),
                        shape=shape, dtype=esp.dtype)
                    arg_plan.append(("item", index, j))
                    check = spec.ValueSpec(spec.TENSOR, dtype=esp.dtype,
                                           shape=shape)
                    self._add_precheck(
                        "arg %d item %d" % (index, j),
                        spec.ArgItemMatches(index, j, check))
                    elements.append(ph)
                else:
                    raise NotConvertible(
                        "argument %r: non-tensor sequence elements are "
                        "imperative-only" % name, feature="argument")
            return SymSeq(elements, is_tuple=sp.is_tuple)
        raise NotConvertible("argument %r spec %r not convertible"
                             % (name, sp), feature="argument")

    def _add_precheck(self, description, check):
        self.prechecks.append((description, check))

    # -- spec seeding from the previous artifact -----------------------------

    def _seed_arg_specs(self, specs):
        """Reuse the predecessor's bound specs where digest-equal.

        Equal digests mean the regenerated graph would bind the argument
        identically, so the previous artifact's spec object is carried
        over instead of the freshly re-derived one (keeping any identity
        tokens/guard closures keyed on it warm).  Unequal digests mean
        the relaxation touched this argument, and the profile-derived
        spec wins — which is what prevents a seed from reintroducing a
        just-relaxed assumption.
        """
        if self.seed is None:
            return specs
        old = self.seed.bound_arg_specs
        if not old or len(old) != len(specs):
            return specs
        seeded = []
        for old_sp, new_sp in zip(old, specs):
            if old_sp is not None and spec.spec_digest(old_sp) == \
                    spec.spec_digest(new_sp):
                seeded.append(old_sp)
                self.specs_seeded += 1
            else:
                seeded.append(new_sp)
        return seeded

    # -- incremental fragment machinery --------------------------------------

    def _begin_fragment(self):
        """Push a dependency recorder for a region conversion (or None
        when incremental regeneration is disabled)."""
        if self.fragments is None:
            return None
        rec = frag_mod.FragmentRecorder(precheck_start=len(self.prechecks))
        self._frag_stack.append(rec)
        return rec

    def _end_fragment(self, rec):
        if rec is not None:
            self._frag_stack.pop()

    def _dep(self, label, fetch, digest, site=None, keep=None):
        """Record a dependency into every active fragment recorder, so
        outer fragments absorb the deps of regions converted inside
        them."""
        if not self._frag_stack:
            return
        for rec in self._frag_stack:
            rec.deps.append((label, fetch, digest))
            if site is not None:
                rec.dep_sites.add(site)
            if keep:
                rec.keepalive.extend(keep)

    def _poison_fragments(self):
        """Mark every active recorder unreusable (the conversion had a
        build-time side effect that splicing would not replay)."""
        for rec in self._frag_stack:
            rec.poisoned = True

    def _adopt_fragment(self, key, frag):
        """Account a splice and re-adopt the fragment's record: its
        prechecks re-enter the new graph's list, and its deps flow into
        any outer recorders still being built."""
        self.fragments_reused += 1
        self._record_fragment_health(key, reused=True)
        self.fragments.touch(key, frag)
        self.prechecks.extend(frag.precheck_entries)
        for rec in self._frag_stack:
            rec.deps.extend(frag.deps)
            rec.dep_sites.update(frag.dep_sites)
            rec.keepalive.extend(frag.keepalive)

    def _record_fragment_health(self, key, reused):
        """Attribute a splice accept/reject to its profiler site so the
        per-site fragment-reuse ratio shows up in janus-stats."""
        if METRICS.enabled:
            owner = getattr(self.profiler, "owner", None)
            if owner is not None and key[1] is not None:
                HEALTH.function(owner).record_fragment(key[1], reused)

    # Profiler queries route through these wrappers so active fragment
    # recorders capture exactly which profiled facts a region's
    # conversion consumed — re-queried and digest-compared at splice time.

    def prof_branch_direction(self, site):
        direction = self.profiler.branch_direction(site)
        if self._frag_stack:
            prof = self.profiler
            self._dep(("branch", site),
                      lambda s=site: prof.branch_direction(s),
                      direction, site=site)
        return direction

    def prof_trip_count(self, site):
        trip = self.profiler.trip_count(site)
        if self._frag_stack:
            prof = self.profiler
            self._dep(("trip", site), lambda s=site: prof.trip_count(s),
                      trip, site=site)
        return trip

    def prof_callee(self, site):
        callee = self.profiler.callee(site)
        if self._frag_stack:
            prof = self.profiler
            keep = []
            digest = frag_mod.value_digest(callee, keep)
            self._dep(("callee", site),
                      lambda s=site: frag_mod.value_digest(prof.callee(s)),
                      digest, site=site, keep=keep)
        return callee

    def prof_attr_spec(self, site, owner=None):
        sp = self.profiler.attr_spec(site, owner=owner)
        if self._frag_stack:
            prof = self.profiler
            keep = [x for x in (sp, owner) if x is not None]
            self._dep(("attr_spec", site),
                      lambda s=site, o=owner:
                          spec.spec_digest(prof.attr_spec(s, owner=o)),
                      spec.spec_digest(sp), site=site, keep=keep)
        return sp

    def prof_subscr_spec(self, site):
        sp = self.profiler.subscr_spec(site)
        if self._frag_stack:
            prof = self.profiler
            self._dep(("subscr_spec", site),
                      lambda s=site:
                          spec.spec_digest(prof.subscr_spec(s)),
                      spec.spec_digest(sp), site=site,
                      keep=[sp] if sp is not None else None)
        return sp

    def prof_return_spec(self, target):
        sp = self.profiler.return_spec(target)
        if self._frag_stack:
            prof = self.profiler
            self._dep(("return_spec", function_key(target)),
                      lambda t=target:
                          spec.spec_digest(prof.return_spec(t)),
                      spec.spec_digest(sp),
                      keep=[sp] if sp is not None else None)
        return sp

    # -- recursive functions as GraphFunctions ---------------------------------------

    def get_graph_function(self, callee, arg_values):
        key = function_key(callee)
        gf = self.graph_functions.get(key)
        if gf is not None:
            return gf
        target = getattr(callee, "__func__", callee)
        gf = GraphFunction(target.__name__)
        # Determine signature and output specs *before* building the body
        # so recursive self-invocations can reference them.
        const_mask, graph_args = [], []
        for value in arg_values:
            if isinstance(value, (NodeOutput, StackedList, SymSeq)):
                const_mask.append(False)
            else:
                const_mask.append(True)
        ret_spec = self.prof_return_spec(target)
        if ret_spec is None or ret_spec.kind == spec.BOTTOM:
            raise NotConvertible(
                "recursive function %s has no stable return spec"
                % target.__name__, feature="recursion")
        out_specs, out_structure = self._specs_from_value_spec(ret_spec)
        gf.janus_meta = {
            "const_mask": const_mask,
            "const_values": [v if m else None
                             for v, m in zip(arg_values, const_mask)],
            "out_specs": out_specs,
            "out_structure": out_structure,
        }
        self.graph_functions[key] = gf

        fdef = get_function_ast(target)
        check_convertible(fdef)
        names = [a.arg for a in fdef.args.args]
        sub = GraphBuilder(name=target.__name__)
        with sub:
            env = {}
            for name, value, is_const in zip(names, arg_values, const_mask):
                if is_const:
                    env[name] = value
                else:
                    flat = []
                    structure = flatten_value(value, flat)
                    phs = [sub.placeholder("%s_%d" % (name, k),
                                           shape=f.shape, dtype=f.dtype)
                           for k, f in enumerate(flat)]
                    env[name] = rebuild_value(structure, iter(phs))
            converter = _FunctionConverter(self, target, env, builder=sub)
            try:
                converter.convert_block(fdef.body)
                result = Const(None)
            except _ReturnValue as ret:
                result = ret.value
            flat = []
            structure = flatten_value(result, flat)
            if not structures_compatible(structure, out_structure):
                raise NotConvertible(
                    "recursive function %s returns inconsistent structure"
                    % target.__name__, feature="recursion")
            sub.mark_outputs(flat)
        gf.finalize(sub.graph)
        return gf

    def _specs_from_value_spec(self, sp, _flat=None):
        """(out_specs, structure) for a profiled return-value spec."""
        if _flat is None:
            _flat = []
        if sp.is_tensor_like:
            _flat.append((sp.shape, sp.dtype))
            return _flat, ("edge",)
        if sp.kind == spec.PYOBJ:
            _flat.append((Shape.scalar(), None))
            return _flat, ("edge",)
        if sp.kind == spec.NONE:
            return _flat, ("const", None)
        if sp.kind == spec.LIST:
            parts = []
            for esp in sp.elements:
                _, sub_structure = self._specs_from_value_spec(esp, _flat)
                parts.append(sub_structure)
            return _flat, ("seq", sp.is_tuple, tuple(parts))
        raise NotConvertible("return spec %r not convertible" % (sp,),
                             feature="recursion")


# ---------------------------------------------------------------------------
# the statement / expression walker
# ---------------------------------------------------------------------------

class _FunctionConverter:
    """Converts one (possibly inlined) function body into graph nodes."""

    def __init__(self, gen, func, env, builder=None):
        self.gen = gen
        self.func = func                       # for globals/closure lookup
        self.env = env
        self.builder = builder if builder is not None else gen.builder
        self.fkey = function_key(func)

    # -- name resolution -----------------------------------------------------

    def lookup(self, name):
        if name in self.env:
            return self.env[name]
        target = getattr(self.func, "__func__", self.func)
        freevars = target.__code__.co_freevars
        if name in freevars and target.__closure__:
            cell = target.__closure__[freevars.index(name)]
            self._record_external_dep(("closure", name), cell=cell)
            return self._classify_external(cell.cell_contents, name)
        if name in target.__globals__:
            self._record_external_dep(("global", name),
                                      globals_dict=target.__globals__,
                                      global_name=name)
            return self._classify_external(target.__globals__[name], name)
        import builtins as _bi
        if hasattr(_bi, name):
            return Const(getattr(_bi, name))
        raise NotConvertible("unresolved name %r" % name, feature="name")

    def _record_external_dep(self, label, cell=None, globals_dict=None,
                             global_name=None):
        """Fragment dep on a closure cell / global burned in at build."""
        gen = self.gen
        if not gen._frag_stack:
            return
        keep = []
        if cell is not None:
            fetch = lambda c=cell: frag_mod.value_digest(c.cell_contents)
            digest = frag_mod.value_digest(cell.cell_contents, keep)
            keep.append(cell)
        else:
            fetch = lambda g=globals_dict, n=global_name: \
                frag_mod.value_digest(g.get(n, _MISSING))
            digest = frag_mod.value_digest(
                globals_dict.get(global_name, _MISSING), keep)
        gen._dep(label, fetch, digest, keep=keep)

    def _record_attr_dep(self, obj, name):
        """Fragment dep on an object attribute read at build time.

        Tensor-valued attributes digest as ``("dyn",)`` on both sides
        (they are read through guarded heap-read nodes, not burned), so
        recording unconditionally is safe.
        """
        gen = self.gen
        if not gen._frag_stack:
            return
        keep = [obj]
        digest = frag_mod.attr_digest(obj, name, keep)
        gen._dep(("attrval", name),
                 lambda o=obj, n=name: frag_mod.attr_digest(o, n),
                 digest, keep=keep)

    def _classify_external(self, value, name):
        """Globals/closure values become build-time constants.

        Mutable data globals additionally get a precheck so a changed
        global invalidates the cached graph (type assumption on context).
        """
        if isinstance(value, (types.ModuleType, types.FunctionType, type)) \
                or callable(value) or isinstance(value, Variable):
            return Const(value)
        if isinstance(value, (bool, int, float, str)) or value is None:
            target = getattr(self.func, "__func__", self.func)
            self.gen._add_precheck(
                "global %r value" % name,
                spec.GlobalEquals(target, name, value))
            return Const(value)
        return Const(value)

    # -- statements -------------------------------------------------------------

    def convert_block(self, stmts):
        for index, stmt in enumerate(stmts):
            # Annotate conversion failures with the statement they died
            # in (innermost statement wins — an already-set lineno is
            # kept).  The co-execution planner maps the lineno back to a
            # top-level statement to split the function there.
            try:
                if isinstance(stmt, ast.If):
                    handled = self._convert_if(stmt, stmts[index + 1:])
                    if handled == "consumed-rest":
                        return
                    continue
                self.convert_statement(stmt)
            except NotConvertible as exc:
                if exc.lineno is None:
                    exc.lineno = getattr(stmt, "lineno", None)
                raise

    def convert_statement(self, stmt):
        if isinstance(stmt, ast.Expr):
            self.convert_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.convert_expr(stmt.value)
            if len(stmt.targets) != 1:
                for target in stmt.targets:
                    self._bind_target(target, value)
            else:
                self._bind_target(stmt.targets[0], value)
        elif isinstance(stmt, ast.AugAssign):
            load = ast.copy_location(
                ast.Name(id="<aug>", ctx=ast.Load()), stmt)
            current = self._load_target(stmt.target)
            value = self._binop_values(type(stmt.op), current,
                                       self.convert_expr(stmt.value))
            self._bind_target(stmt.target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self.convert_expr(stmt.value))
        elif isinstance(stmt, ast.Return):
            value = self.convert_expr(stmt.value) \
                if stmt.value is not None else Const(None)
            raise _ReturnValue(value)
        elif isinstance(stmt, ast.While):
            self._convert_while(stmt)
        elif isinstance(stmt, ast.For):
            self._convert_for(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, ast.Assert):
            self._convert_assert(stmt)
        elif isinstance(stmt, ast.FunctionDef):
            self.env[stmt.name] = SymFunc(stmt, dict(self.env), self.func,
                                          stmt.name)
        elif isinstance(stmt, ast.Raise):
            raise NotConvertible("reachable raise statement (the raising "
                                 "path runs imperatively)", feature="raise")
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.With):
            self._convert_with(stmt)
        elif isinstance(stmt, ast.Try):
            if stmt.handlers:
                raise NotConvertible("except handlers are imperative-only",
                                     feature="exception-handler")
            self.convert_block(stmt.body)
            self.convert_block(stmt.finalbody)
        elif isinstance(stmt, ast.Global):
            raise NotConvertible("global-write declarations are "
                                 "imperative-only", feature="global")
        else:
            raise NotConvertible("statement %s is not convertible"
                                 % type(stmt).__name__, feature="statement")

    def _convert_with(self, stmt):
        """Appendix A: ``with`` lowers to __enter__/__exit__ calls."""
        for item in stmt.items:
            manager = self.convert_expr(item.context_expr)
            entered = self._convert_method_call(
                manager, "__enter__", [], {},
                self._site(item.context_expr, "call"), stmt)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, entered)
        self.convert_block(stmt.body)
        none = Const(None)
        for item in reversed(stmt.items):
            manager = self.convert_expr(item.context_expr)
            self._convert_method_call(
                manager, "__exit__", [none, none, none], {},
                self._site(item.context_expr, "call"), stmt)

    def _convert_assert(self, stmt):
        test = self.convert_expr(stmt.test)
        if isinstance(test, Const):
            if not test.value:
                raise NotConvertible("assert statically false",
                                     feature="assert")
            return
        api.assert_that(self._tensorize(test),
                        message="user assert at line %d" % stmt.lineno)

    # -- assignment targets --------------------------------------------------------

    def _bind_target(self, target, value):
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = self._unpack(value, len(target.elts))
            for t, v in zip(target.elts, items):
                self._bind_target(t, v)
        elif isinstance(target, ast.Attribute):
            owner = self.convert_expr(target.value)
            self._store_attr(owner, target.attr, value)
        elif isinstance(target, ast.Subscript):
            owner = self.convert_expr(target.value)
            self._store_subscr(owner, target.slice, value)
        else:
            raise NotConvertible("assignment target %s"
                                 % type(target).__name__, feature="target")

    def _load_target(self, target):
        expr = ast.copy_location(_set_load(target), target)
        return self.convert_expr(expr)

    def _unpack(self, value, count):
        if isinstance(value, SymSeq):
            if len(value.elements) != count:
                raise NotConvertible("unpacking arity mismatch",
                                     feature="unpack")
            return value.elements
        if isinstance(value, Const) and isinstance(value.value,
                                                   (list, tuple)):
            if len(value.value) != count:
                raise NotConvertible("unpacking arity mismatch",
                                     feature="unpack")
            return [self._wrap_external(v) for v in value.value]
        if isinstance(value, NodeOutput) and value.dtype is not None:
            dim = value.shape[0] if value.shape.dims else None
            if dim != count:
                raise NotConvertible("cannot unpack tensor with dynamic "
                                     "leading dim", feature="unpack")
            return [api.getitem(value, k) for k in range(count)]
        raise NotConvertible("cannot unpack %r" % (value,),
                             feature="unpack")

    def _store_attr(self, owner, name, value):
        graph_value = self._heap_value(value)
        if isinstance(owner, Const):
            from ..janus.coverage import has_custom_accessors
            if has_custom_accessors(owner.value):
                raise NotConvertible("object with custom accessors",
                                     feature="custom-setattr")
            if not self.gen.config.deferred_state_update:
                self._naive_set_attr(owner.value, name, graph_value)
                return
            self.builder.py_set_attr(PyRef(owner.value), name, graph_value)
        elif isinstance(owner, NodeOutput) and owner.dtype is None:
            self.builder.py_set_attr(owner, name, graph_value)
        else:
            raise NotConvertible("attribute store on %r" % (owner,),
                                 feature="setattr")

    def _naive_set_attr(self, obj, name, graph_value):
        """The rejected design of section 4.2.3: mutate in place via a
        PyFunc-style operation (ablation only — breaks all-or-nothing)."""
        def mutate(value, _obj=obj, _name=name):
            setattr(_obj, _name, value)
            return True

        out = self.builder.py_call(mutate, [graph_value],
                                   name="naive_setattr_%s" % name)
        # Subsequent reads must observe the write: order them after it.
        self.builder._hazard_dep(obj, name, out.node, is_write=True)

    def _store_subscr(self, owner, slice_node, value):
        key = self._const_key(slice_node)
        graph_value = self._heap_value(value)
        if isinstance(owner, Const):
            self.builder.py_set_subscr(PyRef(owner.value), key, graph_value)
        elif isinstance(owner, NodeOutput) and owner.dtype is None:
            self.builder.py_set_subscr(owner, key, graph_value)
        elif isinstance(owner, SymSeq):
            if not isinstance(key, int):
                raise NotConvertible("non-constant list index store",
                                     feature="setitem")
            self.gen._poison_fragments()
            owner.elements[key] = value
        elif isinstance(owner, SymDict):
            self.gen._poison_fragments()
            owner.entries[key] = value
        else:
            raise NotConvertible("subscript store on %r" % (owner,),
                                 feature="setitem")

    def _heap_value(self, value):
        """Lower a symbolic value to a single graph edge for heap writes."""
        if isinstance(value, NodeOutput):
            return value
        if isinstance(value, StackedList):
            return value.tensor
        if isinstance(value, Const):
            return self.builder.convert(self._externalizable(value.value))
        if isinstance(value, SymSeq):
            elems = [self._tensorize(e) for e in value.elements]
            return api.stack(elems) if elems else \
                self.builder.convert(np.zeros((0,), np.float32))
        raise NotConvertible("cannot store %r on the heap" % (value,),
                             feature="heap-store")

    @staticmethod
    def _externalizable(value):
        if isinstance(value, (bool, int, float, np.ndarray, TensorValue,
                              Tensor)):
            return value
        return PyRef(value)

    def _const_key(self, slice_node):
        key = self.convert_expr(slice_node)
        if isinstance(key, Const):
            return key.value
        raise NotConvertible("dynamic heap subscript key",
                             feature="subscript")

    # -- expressions ------------------------------------------------------------------

    def convert_expr(self, node):
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is None:
            raise NotConvertible("expression %s is not convertible"
                                 % type(node).__name__, feature="expression")
        return method(node)

    def _expr_Constant(self, node):
        return Const(node.value)

    def _expr_Slice(self, node):
        def part(p):
            if p is None:
                return None
            value = self.convert_expr(p)
            if not isinstance(value, Const):
                raise NotConvertible("dynamic slice bound",
                                     feature="slice")
            return value.value
        return Const(slice(part(node.lower), part(node.upper),
                           part(node.step)))

    def _expr_Name(self, node):
        return self.lookup(node.id)

    def _expr_Tuple(self, node):
        return SymSeq([self.convert_expr(e) for e in node.elts],
                      is_tuple=True)

    def _expr_List(self, node):
        return SymSeq([self.convert_expr(e) for e in node.elts])

    def _expr_Dict(self, node):
        entries = {}
        for k, v in zip(node.keys, node.values):
            key = self.convert_expr(k)
            if not isinstance(key, Const):
                raise NotConvertible("dynamic dict key", feature="dict")
            entries[key.value] = self.convert_expr(v)
        return SymDict(entries)

    def _expr_Lambda(self, node):
        fdef = ast.FunctionDef(name="<lambda>", args=node.args,
                               body=[ast.Return(value=node.body)],
                               decorator_list=[], returns=None)
        ast.copy_location(fdef, node)
        ast.fix_missing_locations(fdef)
        return SymFunc(fdef, dict(self.env), self.func, "<lambda>")

    def _expr_UnaryOp(self, node):
        operand = self.convert_expr(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(operand, Const):
                return Const(-operand.value)
            return api.neg(self._tensorize(operand))
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            if isinstance(operand, Const):
                return Const(not operand.value)
            return api.logical_not(self._tensorize(operand))
        if isinstance(node.op, ast.Invert):
            if isinstance(operand, Const):
                return Const(~operand.value)
        raise NotConvertible("unary op %s" % type(node.op).__name__,
                             feature="unary")

    def _expr_BinOp(self, node):
        left = self.convert_expr(node.left)
        right = self.convert_expr(node.right)
        return self._binop_values(type(node.op), left, right)

    def _binop_values(self, op_type, left, right):
        # Build-time folding for constant operands.
        if isinstance(left, Const) and isinstance(right, Const) and \
                op_type in _PY_BINOP and \
                not isinstance(left.value, (np.ndarray, Tensor)) and \
                not isinstance(right.value, (np.ndarray, Tensor)):
            return Const(_PY_BINOP[op_type](left.value, right.value))
        # Python list concatenation / repetition.
        if isinstance(left, SymSeq) and isinstance(right, SymSeq) and \
                op_type is ast.Add:
            return SymSeq(left.elements + right.elements,
                          is_tuple=left.is_tuple)
        if isinstance(left, SymSeq) and isinstance(right, Const) and \
                op_type is ast.Mult:
            return SymSeq(left.elements * int(right.value),
                          is_tuple=left.is_tuple)
        if isinstance(left, StackedList) and op_type is ast.Add:
            if isinstance(right, SymSeq):
                extra = [api.expand_dims(self._tensorize(e), 0)
                         for e in right.elements]
                return StackedList(api.concat([left.tensor] + extra, 0))
        if op_type not in _BINOP_API:
            raise NotConvertible("binary op %s" % op_type.__name__,
                                 feature="binop")
        fn = getattr(api, _BINOP_API[op_type])
        return fn(self._tensorize(left), self._tensorize(right))

    def _expr_BoolOp(self, node):
        values = [self.convert_expr(v) for v in node.values]
        if all(isinstance(v, Const) for v in values):
            if isinstance(node.op, ast.And):
                result = values[0].value
                for v in values[1:]:
                    result = result and v.value
            else:
                result = values[0].value
                for v in values[1:]:
                    result = result or v.value
            return Const(result)
        fn = api.logical_and if isinstance(node.op, ast.And) \
            else api.logical_or
        result = self._tensorize(values[0])
        for v in values[1:]:
            result = fn(result, self._tensorize(v))
        return result

    def _expr_Compare(self, node):
        left = self.convert_expr(node.left)
        result = None
        for op, comparator in zip(node.ops, node.comparators):
            right = self.convert_expr(comparator)
            piece = self._compare_values(type(op), left, right)
            result = piece if result is None else \
                self._and_values(result, piece)
            left = right
        return result

    def _and_values(self, a, b):
        if isinstance(a, Const) and isinstance(b, Const):
            return Const(a.value and b.value)
        return api.logical_and(self._tensorize(a), self._tensorize(b))

    def _compare_values(self, op_type, left, right):
        if isinstance(left, Const) and isinstance(right, Const) and \
                not isinstance(left.value, (np.ndarray, Tensor)) and \
                not isinstance(right.value, (np.ndarray, Tensor)):
            return Const(_PY_CMP[op_type](left.value, right.value))
        if op_type in (ast.Is, ast.IsNot):
            if isinstance(left, Const) and left.value is None or \
                    isinstance(right, Const) and right.value is None:
                other = right if isinstance(left, Const) else left
                is_none = isinstance(other, Const) and other.value is None
                return Const(is_none if op_type is ast.Is else not is_none)
            raise NotConvertible("is-comparison on dynamic values",
                                 feature="compare")
        if op_type not in _CMP_API:
            raise NotConvertible("comparison %s" % op_type.__name__,
                                 feature="compare")
        fn = getattr(api, _CMP_API[op_type])
        return fn(self._tensorize(left), self._tensorize(right))

    def _expr_IfExp(self, node):
        test = self.convert_expr(node.test)
        if isinstance(test, Const):
            return self.convert_expr(node.body if test.value
                                     else node.orelse)
        site = self._site(node, "ifexp")
        direction = self.gen.prof_branch_direction(site)
        pred = self._tensorize(test)
        if self.gen.config.unroll_stable_control_flow and \
                direction is not None:
            self._assert_direction(pred, direction, site)
            return self.convert_expr(node.body if direction
                                     else node.orelse)
        # Both sides evaluate (documented TF-style semantics).
        t = self._tensorize(self.convert_expr(node.body))
        f = self._tensorize(self.convert_expr(node.orelse))
        return api.where(pred, t, f)

    def _expr_Attribute(self, node):
        owner = self.convert_expr(node.value)
        return self._load_attr(owner, node.attr, self._site(node, "attr"))

    def _expr_Subscript(self, node):
        owner = self.convert_expr(node.value)
        return self._load_subscr(owner, node.slice,
                                 self._site(node, "subscr"))

    def _expr_Call(self, node):
        return self._convert_call(node)

    def _expr_Starred(self, node):
        raise NotConvertible("starred expression", feature="starred-call")

    def _expr_JoinedStr(self, node):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                value = self.convert_expr(piece.value)
                if not isinstance(value, Const):
                    raise NotConvertible("f-string over dynamic value",
                                         feature="fstring")
                parts.append(format(value.value))
        return Const("".join(parts))

    def _expr_ListComp(self, node):
        if len(node.generators) != 1 or node.generators[0].is_async:
            raise NotConvertible("complex comprehension",
                                 feature="comprehension")
        gen = node.generators[0]
        iterable = self.convert_expr(gen.iter)
        items = self._try_static_items(iterable, None)
        if items is None:
            raise NotConvertible("dynamic comprehension iterable",
                                 feature="comprehension")
        out = []
        saved = dict(self.env)
        for item in items:
            self._bind_target(gen.target, item)
            keep = True
            for cond in gen.ifs:
                c = self.convert_expr(cond)
                if not isinstance(c, Const):
                    raise NotConvertible("dynamic comprehension filter",
                                         feature="comprehension")
                keep = keep and bool(c.value)
            if keep:
                out.append(self.convert_expr(node.elt))
        self.env = saved
        return SymSeq(out)

    # -- helper: values as tensors -----------------------------------------------------

    def _tensorize(self, value):
        if isinstance(value, NodeOutput):
            return value
        if isinstance(value, StackedList):
            return value.tensor
        if isinstance(value, Const):
            v = value.value
            if isinstance(v, Variable):
                return self.builder.read_variable(v)
            if isinstance(v, (bool, int, float, np.ndarray, np.generic)):
                return self.builder.convert(v)
            if isinstance(v, Tensor):
                return self.builder.convert(v)
            if isinstance(v, (list, tuple)):
                try:
                    return self.builder.convert(np.asarray(v))
                except (ValueError, TypeError):
                    pass
            raise NotConvertible("value %r has no tensor form" % (v,),
                                 feature="tensorize")
        if isinstance(value, SymSeq):
            return api.stack([self._tensorize(e) for e in value.elements])
        raise NotConvertible("value %r has no tensor form" % (value,),
                             feature="tensorize")

    def _wrap_external(self, value):
        """Wrap a raw Python value produced by constant folding."""
        if isinstance(value, (list, tuple)):
            return SymSeq([self._wrap_external(v) for v in value],
                          is_tuple=isinstance(value, tuple))
        return Const(value)

    def _site(self, node, kind):
        return (self.fkey, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), kind)

    def _assert_direction(self, pred, direction, site):
        check = pred if direction else api.logical_not(pred)
        out = api.assert_that(check,
                              message="stable-branch assumption at %s:%d"
                              % (site[0], site[1]),
                              site=("branch", site))
        return out

    # -- attribute / subscript loads ---------------------------------------------------

    def _load_attr(self, owner, name, site):
        if isinstance(owner, Const):
            return self._load_const_attr(owner.value, name, site)
        if isinstance(owner, NodeOutput):
            if owner.dtype is None:
                return self._load_heap_attr(owner, name, site)
            return self._load_tensor_attr(owner, name)
        if isinstance(owner, (SymSeq, StackedList, SymDict)):
            return _BoundSymMethod(owner, name)
        raise NotConvertible("attribute %r on %r" % (name, owner),
                             feature="attribute")

    #: Immutable framework/builtin types whose attributes and methods are
    #: safe to evaluate at graph-build time.
    _CONST_EVAL_TYPES = (Shape, dtypes.DType, tuple, str, range, bytes,
                         frozenset, bool, int, float, complex)

    def _load_const_attr(self, obj, name, site):
        if isinstance(obj, self._CONST_EVAL_TYPES):
            return self._wrap_external(getattr(obj, name))
        from .coverage import has_custom_accessors
        if has_custom_accessors(obj) and not isinstance(
                obj, (types.ModuleType, type)):
            raise NotConvertible("object with custom accessors",
                                 feature="custom-setattr")
        try:
            value = getattr(obj, name)
        except AttributeError:
            # The attribute is created later by a heap write in this same
            # graph; fall back to a dynamic heap read.
            return self._load_heap_attr(PyRef(obj), name, site)
        self._record_attr_dep(obj, name)
        if isinstance(value, Variable):
            return Const(value)
        if callable(value) or isinstance(value, (types.ModuleType, type)):
            return Const(value)
        if isinstance(value, (bool, int, float)):
            # Scalar hyperparameters that held one value throughout
            # profiling become build-time constants guarded by a runtime
            # value check (paper 4.2.2: stable expressions fold to
            # constants); an unstable scalar stays a dynamic heap read.
            profiled = self.gen.prof_attr_spec(site, owner=obj)
            if profiled is not None and \
                    profiled.kind == spec.CONST_TENSOR:
                guard = self.builder.py_get_attr(
                    PyRef(obj), name,
                    expected=("const", profiled.dtype, profiled.value))
                guard.node.attrs["prof_site"] = ("attr", site)
                return Const(value)
            expected = spec.expected_attr_spec(profiled)
            out = self.builder.py_get_attr(PyRef(obj), name,
                                           expected=expected)
            out.node.attrs["prof_site"] = ("attr", site)
            return out
        if isinstance(value, (Tensor, np.ndarray, np.generic)):
            # Numeric instance state is mutable: read through the heap
            # with the profiled spec as a runtime assumption.
            profiled = self.gen.prof_attr_spec(site, owner=obj)
            expected = spec.expected_attr_spec(
                profiled if profiled is not None and
                self.gen.config.specialize_types else
                spec.relax_constants(profiled) if profiled else None)
            out = self.builder.py_get_attr(PyRef(obj), name,
                                           expected=expected)
            out.node.attrs["prof_site"] = ("attr", site)
            return out
        if isinstance(value, (list, tuple)):
            if all(callable(v) or isinstance(v, (Variable, str, type))
                   for v in value):
                return Const(value)
            if all(isinstance(v, (bool, int, float)) for v in value):
                return Const(value)
            if all(isinstance(v, (Tensor, np.ndarray)) for v in value):
                out = self.builder.py_get_attr(PyRef(obj), name)
                out.node.attrs["prof_site"] = ("attr", site)
                return out
            return Const(value)
        if isinstance(value, dict) or value is None or \
                isinstance(value, str):
            return Const(value)
        # Arbitrary object state (e.g. optimizer, sub-module): build-time.
        return Const(value)

    def _load_heap_attr(self, owner_edge, name, site):
        profiled = self.gen.prof_attr_spec(site)
        expected = spec.expected_attr_spec(_type_only(profiled)
                                           if profiled else None)
        out = self.builder.py_get_attr(owner_edge, name, expected=expected)
        out.node.attrs["prof_site"] = ("attr", site)
        return out

    def _load_tensor_attr(self, tensor, name):
        if name == "shape":
            if tensor.shape.dims is not None:
                return Const(tensor.shape)
            return api.shape_of(tensor)
        if name == "dtype":
            return Const(tensor.dtype)
        if name == "ndim":
            if tensor.shape.rank is not None:
                return Const(tensor.shape.rank)
        if name == "T":
            return api.transpose(tensor)
        raise NotConvertible("tensor attribute %r" % name,
                             feature="tensor-attr")

    def _load_subscr(self, owner, slice_node, site):
        index = self.convert_expr(slice_node) \
            if not isinstance(slice_node, ast.Tuple) else \
            SymSeq([self.convert_expr(e) for e in slice_node.elts],
                   is_tuple=True)
        if isinstance(owner, NodeOutput) and owner.dtype is not None:
            return self._tensor_getitem(owner, index, slice_node)
        if isinstance(owner, StackedList):
            return self._tensor_getitem(owner.tensor, index, slice_node)
        if isinstance(owner, SymSeq):
            if isinstance(index, Const):
                if isinstance(index.value, slice):
                    return SymSeq(owner.elements[index.value],
                                  is_tuple=owner.is_tuple)
                return owner.elements[index.value]
            # Dynamic index into a static list of tensors: stack + gather.
            stacked = api.stack([self._tensorize(e)
                                 for e in owner.elements])
            return api.gather(stacked, self._tensorize(index))
        if isinstance(owner, SymDict):
            if isinstance(index, Const):
                return owner.entries[index.value]
            raise NotConvertible("dynamic dict lookup", feature="dict")
        if isinstance(owner, Const):
            container = owner.value
            if isinstance(index, Const):
                if isinstance(container,
                              (list, tuple, dict, str, range, Shape)):
                    return self._wrap_external(container[index.value])
                if isinstance(container, (np.ndarray, Tensor)):
                    return self._tensor_getitem(self._tensorize(owner),
                                                index, slice_node)
            if isinstance(container, (np.ndarray, Tensor)):
                return self._tensor_getitem(self._tensorize(owner), index,
                                            slice_node)
            if isinstance(container, (list, tuple, dict)):
                profiled = self.gen.prof_subscr_spec(site)
                expected = spec.expected_attr_spec(
                    profiled if self.gen.config.specialize_types else
                    _type_only(profiled))
                key = index.value if isinstance(index, Const) else None
                if key is None:
                    raise NotConvertible("dynamic heap subscript",
                                         feature="subscript")
                out = self.builder.py_get_subscr(PyRef(container), key,
                                                 expected=expected)
                out.node.attrs["prof_site"] = ("subscr", site)
                return out
        if isinstance(owner, NodeOutput) and owner.dtype is None:
            if isinstance(index, Const):
                profiled = self.gen.prof_subscr_spec(site)
                expected = spec.expected_attr_spec(
                    profiled if self.gen.config.specialize_types else
                    _type_only(profiled))
                out = self.builder.py_get_subscr(owner, index.value,
                                                 expected=expected)
                out.node.attrs["prof_site"] = ("subscr", site)
                return out
        raise NotConvertible("subscript on %r" % (owner,),
                             feature="subscript")

    def _tensor_getitem(self, tensor, index, slice_node):
        static = self._static_index(index)
        if static is not _MISSING:
            return api.getitem(tensor, static)
        # Tensor-valued index: gather along axis 0.
        return api.gather(tensor, self._tensorize(index))

    def _static_index(self, index):
        if isinstance(index, Const):
            return index.value
        if isinstance(index, SymSeq):
            parts = []
            for e in index.elements:
                p = self._static_index(e)
                if p is _MISSING:
                    return _MISSING
                parts.append(p)
            return tuple(parts)
        return _MISSING

    # -- calls ----------------------------------------------------------------------------

    def _convert_call(self, node):
        site = self._site(node, "call")
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                raise NotConvertible("**kwargs call", feature="starred-call")
            kwargs[kw.arg] = self.convert_expr(kw.value)
        args = [self.convert_expr(a) for a in node.args]

        # Method-style call: resolve without materializing a py_get node.
        if isinstance(node.func, ast.Attribute):
            owner = self.convert_expr(node.func.value)
            return self._convert_method_call(owner, node.func.attr, args,
                                             kwargs, site, node)
        func_sym = self.convert_expr(node.func)
        return self._dispatch_call(func_sym, args, kwargs, site, node)

    def _convert_method_call(self, owner, name, args, kwargs, site, node):
        if isinstance(owner, (SymSeq, SymDict, StackedList)):
            return self._sym_container_method(owner, name, args, kwargs)
        if isinstance(owner, Const):
            obj = owner.value
            if isinstance(obj, Variable):
                return self._variable_method(obj, name, args, kwargs)
            if isinstance(obj, self._CONST_EVAL_TYPES) and \
                    all(isinstance(a, Const) for a in args) and \
                    all(isinstance(v, Const) for v in kwargs.values()):
                result = getattr(obj, name)(
                    *[a.value for a in args],
                    **{k: v.value for k, v in kwargs.items()})
                return self._wrap_external(result)
            try:
                bound = getattr(obj, name)
            except AttributeError:
                raise NotConvertible("method %r missing on %r"
                                     % (name, obj), feature="method")
            return self._dispatch_call(Const(bound), args, kwargs, site,
                                       node, self_value=owner)
        if isinstance(owner, NodeOutput) and owner.dtype is None:
            # Dynamic receiver: callee identity comes from the profile.
            callee = self.gen.prof_callee(site)
            if callee is None:
                raise NotConvertible("unstable method %r on dynamic object"
                                     % name, feature="method")
            return self._call_user_function(callee, [owner] + args, kwargs,
                                            bound_self=True)
        if isinstance(owner, NodeOutput):
            return self._tensor_method(owner, name, args, kwargs)
        raise NotConvertible("method call %r on %r" % (name, owner),
                             feature="method")

    def _variable_method(self, variable, name, args, kwargs):
        if name == "assign":
            return self.builder.assign_variable(
                variable, self._tensorize(args[0]))
        if name == "assign_add":
            current = self.builder.read_variable(variable)
            return self.builder.assign_variable(
                variable, api.add(current, self._tensorize(args[0])))
        if name == "assign_sub":
            current = self.builder.read_variable(variable)
            return self.builder.assign_variable(
                variable, api.sub(current, self._tensorize(args[0])))
        if name == "value":
            return self.builder.read_variable(variable)
        if name == "numpy":
            raise NotConvertible("Variable.numpy() forces materialization",
                                 feature="numpy")
        raise NotConvertible("Variable method %r" % name, feature="method")

    def _tensor_method(self, tensor, name, args, kwargs):
        if name == "numpy" or name == "item":
            raise NotConvertible("tensor materialization (%s) inside a "
                                 "graph" % name, feature="numpy")
        raise NotConvertible("tensor method %r" % name, feature="method")

    def _sym_container_method(self, owner, name, args, kwargs):
        if isinstance(owner, SymSeq):
            # Build-time mutation of a container that may be shared with
            # the enclosing environment: splicing a cached fragment would
            # skip the mutation, so active fragments become uncacheable.
            if name == "append":
                self.gen._poison_fragments()
                owner.elements.append(args[0])
                return Const(None)
            if name == "extend":
                other = args[0]
                if isinstance(other, SymSeq):
                    self.gen._poison_fragments()
                    owner.elements.extend(other.elements)
                    return Const(None)
            if name == "pop":
                self.gen._poison_fragments()
                idx = args[0].value if args else -1
                return owner.elements.pop(idx)
            if name == "insert":
                self.gen._poison_fragments()
                owner.elements.insert(args[0].value, args[1])
                return Const(None)
        if isinstance(owner, StackedList) and name == "append":
            self.gen._poison_fragments()
            elem = api.expand_dims(self._tensorize(args[0]), 0)
            owner.tensor = api.concat([owner.tensor, elem], 0)
            return Const(None)
        if isinstance(owner, SymDict):
            if name == "get":
                key = args[0]
                if isinstance(key, Const) and key.value in owner.entries:
                    return owner.entries[key.value]
                return args[1] if len(args) > 1 else Const(None)
            if name == "keys":
                return SymSeq([Const(k) for k in owner.entries])
            if name == "values":
                return SymSeq(list(owner.entries.values()))
            if name == "items":
                return SymSeq([SymSeq([Const(k), v], is_tuple=True)
                               for k, v in owner.entries.items()])
        raise NotConvertible("container method %r" % name, feature="method")

    def _dispatch_call(self, func_sym, args, kwargs, site, node,
                       self_value=None):
        if isinstance(func_sym, SymFunc):
            return self._inline_symfunc(func_sym, args, kwargs)
        if isinstance(func_sym, NodeOutput):
            raise NotConvertible("calling a runtime-computed callable",
                                 feature="dynamic-call")
        if not isinstance(func_sym, Const):
            raise NotConvertible("call target %r" % (func_sym,),
                                 feature="call")
        callee = func_sym.value
        target = getattr(callee, "__func__", callee)

        if target is api.executing_eagerly:
            # The converted program keeps its imperative semantics.
            return Const(True)
        if target in STRUCTURAL_BUILTINS:
            return self._structural_builtin(
                STRUCTURAL_BUILTINS[target], args, kwargs)
        if target in MATH_CONST_FUNCS:
            cargs = [a.value for a in args if isinstance(a, Const)]
            if len(cargs) == len(args):
                return Const(target(*cargs))
            tensor_map = {"sqrt": api.sqrt, "exp": api.exp, "log": api.log}
            name = target.__name__
            if name in tensor_map and len(args) == 1:
                return tensor_map[name](self._tensorize(args[0]))
            raise NotConvertible("math.%s on dynamic value" % name,
                                 feature="math")
        handler = handler_for(target)
        if handler is not None:
            return self._call_whitelisted(handler, callee, args, kwargs)
        if is_whitelisted(target):
            raise NotConvertible("whitelisted %r has no graph handler"
                                 % (target,), feature="whitelist")
        if isinstance(target, types.FunctionType):
            call_args = list(args)
            if hasattr(callee, "__self__"):
                self_obj = callee.__self__
                call_args = [Const(self_obj)] + call_args
            return self._call_user_function(target, call_args, kwargs,
                                            bound_self=hasattr(
                                                callee, "__self__"))
        if isinstance(callee, type):
            raise NotConvertible("constructing %r inside a graph"
                                 % callee.__name__, feature="constructor")
        if callable(callee) and hasattr(type(callee), "__call__") and \
                not isinstance(callee, types.BuiltinFunctionType):
            # Callable object (layer/module): inline its __call__.  The
            # generic Module.__call__ merely forwards to .call, so inline
            # the latter directly (its signature is explicit).
            from ..nn.module import Module
            call_fn = type(callee).__call__
            if isinstance(callee, Module) and \
                    call_fn is Module.__call__:
                call_fn = type(callee).call
            return self._call_user_function(call_fn,
                                            [Const(callee)] + list(args),
                                            kwargs, bound_self=True)
        raise NotConvertible("cannot convert call to %r" % (callee,),
                             feature="call")

    def _call_whitelisted(self, handler, callee, args, kwargs):
        """Emit graph ops for a framework/builtin call (section 4.3.1)."""
        def lower(value):
            if isinstance(value, Const):
                v = value.value
                if isinstance(v, Variable):
                    return self.builder.read_variable(v)
                if isinstance(v, Tensor):
                    return self.builder.convert(v)
                return v
            if isinstance(value, SymSeq):
                return [lower(e) for e in value.elements]
            if isinstance(value, StackedList):
                return value.tensor
            return value

        largs = [lower(a) for a in args]
        lkwargs = {k: lower(v) for k, v in kwargs.items()}
        if handler is getattr(Variable, "assign", None):
            pass
        result = handler(*largs, **lkwargs)
        if isinstance(result, tuple):
            return SymSeq(list(result), is_tuple=True)
        return result

    def _call_user_function(self, target, args, kwargs, bound_self=False):
        key = function_key(target)
        if key in self.gen.recursive_keys:
            return self._call_recursive(target, args, kwargs)
        try:
            fdef = get_function_ast(target)
            check_convertible(fdef)
            env = self._bind_call_args(target, fdef, args, kwargs)
            converter = _FunctionConverter(self.gen, target, env,
                                           builder=self.builder)
            converter.convert_block(fdef.body)
        except _ReturnValue as ret:
            return ret.value
        except NotConvertible as exc:
            # The lineno (if any) is in the callee's coordinates; drop
            # it so the caller's convert_block stamps the call-site
            # statement — the coordinate the co-execution planner needs.
            exc.lineno = None
            raise
        return Const(None)

    def _call_recursive(self, target, args, kwargs):
        if kwargs:
            raise NotConvertible("keyword args on recursive calls",
                                 feature="recursion")
        args = [self._lower_recursive_arg(a) for a in args]
        gf = self.gen.get_graph_function(target, args)
        meta = gf.janus_meta
        graph_args = []
        for value, is_const in zip(args, meta["const_mask"]):
            if is_const:
                continue
            flat = []
            flatten_value(value, flat)
            graph_args.extend(flat)
        outputs = self.builder.invoke(gf, graph_args, meta["out_specs"])
        if not isinstance(outputs, tuple):
            outputs = (outputs,)
        return rebuild_value(meta["out_structure"], iter(outputs))

    def _lower_recursive_arg(self, value):
        """Prepare an argument for a recursive invoke.

        Different recursive invocations pass different values through the
        same GraphFunction signature, so only values that are provably
        position-stable (modules, callables, Variables, strings, None)
        may burn in as constants; numbers become tensor edges and
        arbitrary objects (tree nodes!) become PyRef edges.
        """
        if not isinstance(value, Const):
            return value
        v = value.value
        from ..nn.module import Module
        if isinstance(v, (types.FunctionType, types.MethodType,
                          types.ModuleType, type, Variable, Module,
                          str)) or v is None or callable(v):
            return value
        if isinstance(v, (bool, int, float, np.ndarray, np.generic,
                          Tensor)):
            return self._tensorize(value)
        return self.builder.pyref_constant(PyRef(v))

    def _bind_call_args(self, target, fdef, args, kwargs):
        params = [a.arg for a in fdef.args.args]
        defaults = list(fdef.args.defaults)
        env = {}
        surplus = []
        for i, value in enumerate(args):
            if i >= len(params):
                if fdef.args.vararg is not None:
                    surplus.append(value)
                    continue
                raise NotConvertible("too many arguments to %s"
                                     % target.__name__, feature="call")
            env[params[i]] = value
        if fdef.args.vararg is not None:
            env[fdef.args.vararg.arg] = SymSeq(surplus, is_tuple=True)
        for name, value in kwargs.items():
            if name not in params:
                raise NotConvertible("unknown kwarg %r" % name,
                                     feature="call")
            env[name] = value
        # Defaults from the live function object (evaluated values).
        n_required = len(params) - len(target.__defaults__ or ())
        for i, name in enumerate(params):
            if name in env:
                continue
            if i >= n_required:
                env[name] = self._wrap_external(
                    target.__defaults__[i - n_required])
            else:
                raise NotConvertible("missing argument %r" % name,
                                     feature="call")
        return env

    def _inline_symfunc(self, sym_func, args, kwargs):
        fdef = sym_func.fdef
        params = [a.arg for a in fdef.args.args]
        env = dict(sym_func.env)
        for i, value in enumerate(args):
            env[params[i]] = value
        for name, value in kwargs.items():
            env[name] = value
        defaults = fdef.args.defaults
        for i, name in enumerate(params):
            if name not in env:
                d_index = i - (len(params) - len(defaults))
                if d_index >= 0:
                    env[name] = self.convert_expr(defaults[d_index])
                else:
                    raise NotConvertible("missing argument %r" % name,
                                         feature="call")
        converter = _FunctionConverter(self.gen, sym_func.owner_func, env,
                                       builder=self.builder)
        try:
            converter.convert_block(fdef.body)
        except _ReturnValue as ret:
            return ret.value
        except NotConvertible as exc:
            # Callee coordinates, same as _call_user_function: the
            # call-site statement is the one the planner must split at.
            exc.lineno = None
            raise
        return Const(None)

    # -- structural builtins ------------------------------------------------------------

    def _structural_builtin(self, name, args, kwargs):
        if name == "len":
            return self._builtin_len(args[0])
        if name == "range":
            return self._builtin_range(args)
        if name == "enumerate":
            return _SymEnumerate(args[0],
                                 args[1] if len(args) > 1 else Const(0))
        if name == "zip":
            return _SymZip(args)
        if name in ("float", "int", "bool"):
            if isinstance(args[0], Const):
                cast_fn = {"float": float, "int": int, "bool": bool}[name]
                return Const(cast_fn(args[0].value))
            dtype = {"float": "float32", "int": "int64",
                     "bool": "bool"}[name]
            return api.cast(self._tensorize(args[0]), dtype)
        if name in ("min", "max"):
            fn = api.minimum if name == "min" else api.maximum
            values = args
            if len(args) == 1 and isinstance(args[0], SymSeq):
                values = args[0].elements
            if all(isinstance(v, Const) for v in values):
                pick = min if name == "min" else max
                return Const(pick(v.value for v in values))
            result = self._tensorize(values[0])
            for v in values[1:]:
                result = fn(result, self._tensorize(v))
            return result
        if name == "sum":
            seq = args[0]
            if isinstance(seq, SymSeq):
                if not seq.elements:
                    return Const(0)
                total = seq.elements[0]
                for e in seq.elements[1:]:
                    total = self._binop_values(ast.Add, total, e)
                return total
            if isinstance(seq, StackedList):
                return api.reduce_sum(seq.tensor, axis=0)
            if isinstance(seq, NodeOutput):
                return api.reduce_sum(seq, axis=0)
        if name == "isinstance":
            if isinstance(args[0], Const) and isinstance(args[1], Const):
                return Const(isinstance(args[0].value, args[1].value))
            raise NotConvertible("isinstance on dynamic value",
                                 feature="isinstance")
        if name == "list":
            if not args:
                return SymSeq([])
            seq = args[0]
            if isinstance(seq, SymSeq):
                return SymSeq(list(seq.elements))
            if isinstance(seq, Const) and isinstance(seq.value,
                                                     (list, tuple, range)):
                return SymSeq([self._wrap_external(v) for v in seq.value])
        if name == "tuple":
            if not args:
                return SymSeq([], is_tuple=True)
            seq = args[0]
            if isinstance(seq, SymSeq):
                return SymSeq(list(seq.elements), is_tuple=True)
        if name == "reversed":
            seq = args[0]
            if isinstance(seq, SymSeq):
                return SymSeq(list(reversed(seq.elements)),
                              is_tuple=seq.is_tuple)
            if isinstance(seq, Const) and isinstance(seq.value,
                                                     (list, tuple, range)):
                return SymSeq([self._wrap_external(v)
                               for v in reversed(seq.value)])
        raise NotConvertible("builtin %s with these operands" % name,
                             feature="builtin")

    def _builtin_len(self, value):
        if isinstance(value, SymSeq):
            return Const(len(value.elements))
        if isinstance(value, SymDict):
            return Const(len(value.entries))
        if isinstance(value, Const) and hasattr(value.value, "__len__"):
            return Const(len(value.value))
        if isinstance(value, StackedList):
            value = value.tensor
        if isinstance(value, NodeOutput) and value.dtype is not None:
            dim = value.shape[0] if value.shape.dims else None
            if dim is not None:
                return Const(dim)
            return api.getitem(api.shape_of(value), 0)
        raise NotConvertible("len() of %r" % (value,), feature="len")

    def _builtin_range(self, args):
        vals = list(args) + [Const(None)] * (3 - len(args))
        start, stop, step = vals[:3]
        if len(args) == 1:
            start, stop, step = Const(0), args[0], Const(1)
        if step.value is None if isinstance(step, Const) else False:
            step = Const(1)
        if all(isinstance(v, Const) for v in (start, stop, step)):
            return Const(range(start.value, stop.value, step.value))
        return SymRange(start, stop, step)

    # -- dynamic control flow (paper section 4.2.1) --------------------------------------

    def _convert_if(self, stmt, rest):
        """Convert an if statement; returns "consumed-rest" when the
        trailing statements were folded into a synthesized else branch
        (guard pattern: a branch that returns with no else)."""
        test = self.convert_expr(stmt.test)
        if isinstance(test, Const):
            self.convert_block(stmt.body if test.value else stmt.orelse)
            return None
        pred = self._tensorize(test)
        site = self._site(stmt, "if")
        direction = self.gen.prof_branch_direction(site)
        if self.gen.config.unroll_stable_control_flow and \
                direction is not None:
            taken = stmt.body if direction else stmt.orelse
            not_taken = stmt.orelse if direction else stmt.body
            if contains_raise(taken):
                raise NotConvertible("stable path raises",
                                     feature="raise")
            self._assert_direction(pred, direction, site)
            self.convert_block(taken)
            return None
        # Dynamic conditional.
        body_returns = always_returns(stmt.body)
        orelse = stmt.orelse
        consumed_rest = False
        if body_returns and not orelse and rest:
            orelse = list(rest)
            consumed_rest = True
        orelse_returns = always_returns(orelse) if orelse else False
        if body_returns and orelse_returns:
            value = self._dynamic_cond_returning(pred, stmt.body, orelse,
                                                 site=site)
            raise _ReturnValue(value)
        if body_returns != orelse_returns:
            raise NotConvertible("conditionally returning branch without "
                                 "a stable profile", feature="control-flow")
        self._dynamic_cond_assigning(pred, stmt.body, orelse, site=site)
        return "consumed-rest" if consumed_rest else None

    def _dynamic_cond_returning(self, pred, body, orelse, site=None):
        gen = self.gen
        key = ("cond_ret", site)
        spliced = self._splice_cond(key, pred, body, orelse, None)
        if spliced is not None:
            outputs, structure = spliced
            return rebuild_value(structure, iter(outputs))
        rec = gen._begin_fragment()
        try:
            t_func, t_struct, captured = self._build_branch(body, None,
                                                            "true")
            f_func, f_struct, captured2 = self._build_branch(
                orelse, None, "false", captured_plan=captured)
        finally:
            gen._end_fragment(rec)
        if not structures_compatible(t_struct, f_struct):
            raise NotConvertible("branches return different structures "
                                 "(section 4.3.1 type rule)",
                                 feature="control-flow")
        out_specs = self._join_out_specs(t_func, f_func)
        flat_captured = [v for _, v in captured]
        outputs = self.builder.cond(pred, t_func, f_func, flat_captured,
                                    out_specs)
        if not isinstance(outputs, tuple):
            outputs = (outputs,)
        self._store_cond_fragment(key, rec, body, orelse, None,
                                  t_func, f_func, t_struct, captured)
        return rebuild_value(t_struct, iter(outputs))

    def _dynamic_cond_assigning(self, pred, body, orelse, site=None):
        gen = self.gen
        in_body = assigned_names(body)
        in_orelse = assigned_names(orelse)
        # Names assigned on both paths always merge; one-sided names need
        # a pre-existing binding to supply the other branch's value.
        out_names = sorted((in_body & in_orelse) |
                           {n for n in (in_body | in_orelse)
                            if n in self.env})
        key = ("cond_set", site)
        spliced = self._splice_cond(key, pred, body, orelse,
                                    tuple(out_names))
        if spliced is not None:
            outputs, structure = spliced
            merged = rebuild_value(structure, iter(outputs))
            for name, value in zip(out_names, merged.elements):
                self.env[name] = value
            return

        def trailer(env_after):
            return SymSeq([env_after.get(n, self.env.get(n))
                           for n in out_names], is_tuple=True)

        rec = gen._begin_fragment()
        try:
            t_func, t_struct, captured = self._build_branch(body, trailer,
                                                            "true")
            f_func, f_struct, _ = self._build_branch(orelse or [], trailer,
                                                     "false",
                                                     captured_plan=captured)
        finally:
            gen._end_fragment(rec)
        if not structures_compatible(t_struct, f_struct):
            raise NotConvertible("branches assign incompatible values",
                                 feature="control-flow")
        out_specs = self._join_out_specs(t_func, f_func)
        flat_captured = [v for _, v in captured]
        outputs = self.builder.cond(pred, t_func, f_func, flat_captured,
                                    out_specs)
        if not isinstance(outputs, tuple):
            outputs = (outputs,)
        self._store_cond_fragment(key, rec, body, orelse or [],
                                  tuple(out_names), t_func, f_func,
                                  t_struct, captured)
        merged = rebuild_value(t_struct, iter(outputs))
        for name, value in zip(out_names, merged.elements):
            self.env[name] = value

    # -- fragment splice / store (incremental regeneration) ------------------

    def _env_token(self, value, keep=None):
        """How an env name currently resolves, for fragment validation."""
        if _holds_graph_value(value):
            flat = []
            structure = flatten_value(value, flat)
            return ("graph", _structure_token(structure, keep))
        return ("const", self._sym_digest(value, keep))

    def _sym_digest(self, value, keep=None, depth=0):
        if isinstance(value, Const):
            return ("c", frag_mod.value_digest(value.value, keep))
        if value is None:
            return ("c", ("val", "NoneType", None))
        if isinstance(value, SymSeq):
            if depth >= 3 or len(value.elements) > 32:
                return ("unsum", object())
            return ("seq", value.is_tuple,
                    tuple(self._sym_digest(e, keep, depth + 1)
                          for e in value.elements))
        if isinstance(value, SymDict):
            if depth >= 3 or len(value.entries) > 32:
                return ("unsum", object())
            return ("map", tuple(
                (k, self._sym_digest(v, keep, depth + 1))
                for k, v in value.entries.items()))
        if isinstance(value, SymRange):
            return ("rng", self._sym_digest(value.start, keep, depth + 1),
                    self._sym_digest(value.stop, keep, depth + 1),
                    self._sym_digest(value.step, keep, depth + 1))
        # SymFunc environments and anything else defy a cheap summary:
        # a fresh sentinel never compares equal, so regions reading such
        # values always reconvert rather than risk a stale splice.
        return ("unsum", object())

    def _env_summary_for(self, names, rec):
        summary = {}
        for name in sorted(names):
            if name in self.env:
                summary[name] = self._env_token(self.env[name],
                                                rec.keepalive)
            else:
                summary[name] = ("ext",)
        return summary

    def _env_matches(self, frag):
        for name, token in frag.env_summary.items():
            if name in self.env:
                if self._env_token(self.env[name]) != token:
                    return False
            elif token != ("ext",):
                return False
        return True

    def _replay_captures(self, frag):
        """Current capture edges matching the fragment's plan, or None.

        Strict by design: every planned edge must exist with exactly the
        recorded shape dims and dtype, because the fragment body's
        placeholders were built against them.
        """
        flat_by_base = {}
        edges = []
        for ckey, (dims, dtype) in zip(frag.captured_keys,
                                       frag.capture_specs):
            base, _, idx = ckey.rpartition("#")
            flat = flat_by_base.get(base)
            if flat is None:
                if base not in self.env:
                    return None
                flat = []
                try:
                    flatten_value(self.env[base], flat)
                except NotConvertible:
                    return None
                flat_by_base[base] = flat
            k = int(idx)
            if k >= len(flat):
                return None
            edge = flat[k]
            if not isinstance(edge, NodeOutput) or edge.dtype is not dtype \
                    or edge.shape.dims != dims:
                return None
            edges.append(edge)
        return edges

    def _cond_env_names(self, body, orelse, out_names):
        names = read_names(body) | read_names(orelse or [])
        if out_names:
            names |= set(out_names)
        return names

    def _splice_cond(self, key, pred, body, orelse, out_names):
        gen = self.gen
        if gen.fragments is None or key[1] is None:
            return None
        for frag in gen.fragments.lookup(key):
            if frag.out_names != out_names:
                continue
            if not frag_mod.deps_valid(frag, gen.dirty_sites):
                continue
            if not self._env_matches(frag):
                continue
            edges = self._replay_captures(frag)
            if edges is None:
                continue
            try:
                out_specs = self._join_out_specs(frag.t_func, frag.f_func)
            except NotConvertible:
                continue
            outputs = self.builder.cond(pred, frag.t_func, frag.f_func,
                                        edges, out_specs)
            if not isinstance(outputs, tuple):
                outputs = (outputs,)
            gen._adopt_fragment(key, frag)
            return outputs, frag.structure
        gen.fragments.miss()
        return None

    def _store_cond_fragment(self, key, rec, body, orelse, out_names,
                             t_func, f_func, structure, captured):
        gen = self.gen
        if rec is None:
            return
        gen.fragments_reconverted += 1
        gen._record_fragment_health(key, reused=False)
        if rec.poisoned or key[1] is None:
            return
        env_summary = self._env_summary_for(
            self._cond_env_names(body, orelse, out_names), rec)
        frag = frag_mod.Fragment(
            "cond", key, rec, env_summary,
            list(gen.prechecks[rec.precheck_start:]),
            t_func=t_func, f_func=f_func, structure=structure,
            out_names=out_names,
            captured_keys=[k for k, _ in captured],
            capture_specs=[(edge.shape.dims, edge.dtype)
                           for _, edge in captured])
        gen.fragments.store(key, frag)

    def _build_branch(self, stmts, trailer, label, captured_plan=None):
        """Convert a branch body into a GraphFunction.

        ``captured_plan`` (from the first branch) pins the capture list so
        both branches share one signature; extra captures needed by the
        second branch are appended.
        """
        if captured_plan is None:
            captured_plan = []
        # Capture every env name holding graph values that the branch
        # reads (flattened); constants are shared by reference.
        needed = read_names(stmts)
        capture_names = []
        for name in sorted(needed):
            if name in self.env and _holds_graph_value(self.env[name]):
                capture_names.append(name)
        if trailer is not None:
            for name in sorted(set(
                    n for n in assigned_names(stmts) if n in self.env)):
                if _holds_graph_value(self.env[name]) and \
                        name not in capture_names:
                    capture_names.append(name)

        plan_bases = {key.split("#")[0] for key, _ in captured_plan}
        for name in capture_names:
            if name not in plan_bases:
                flat = []
                flatten_value(self.env[name], flat)
                for k, edge in enumerate(flat):
                    captured_plan.append(("%s#%d" % (name, k), edge))
                plan_bases.add(name)

        sub = GraphBuilder(name="branch_%s" % label)
        with sub:
            env = dict(self.env)
            # Rebind captured names to branch placeholders.
            by_name = {}
            for key, edge in captured_plan:
                base = key.split("#")[0]
                by_name.setdefault(base, []).append(
                    sub.placeholder(key, shape=edge.shape,
                                    dtype=edge.dtype))
            for base, phs in by_name.items():
                if base in self.env:
                    flat = []
                    structure = flatten_value(self.env[base], flat)
                    env[base] = rebuild_value(structure, iter(phs))
            converter = _FunctionConverter(self.gen, self.func, env,
                                           builder=sub)
            try:
                converter.convert_block(list(stmts))
                if trailer is None:
                    result = Const(None)
                else:
                    result = trailer(converter.env)
            except _ReturnValue as ret:
                result = ret.value
            except (_BreakSignal, _ContinueSignal):
                raise NotConvertible(
                    "break/continue across a dynamic branch has no "
                    "graph representation", feature="break")
            flat = []
            structure = flatten_value(result, flat)
            lowered = []
            for edge in flat:
                lowered.append(edge)
            sub.mark_outputs(lowered)
        func = sub.finalize_function("branch_%s" % label)
        return func, structure, captured_plan

    def _join_out_specs(self, t_func, f_func):
        t_outs = t_func.graph.outputs
        f_outs = f_func.graph.outputs
        if len(t_outs) != len(f_outs):
            raise NotConvertible("branch output arity mismatch",
                                 feature="control-flow")
        specs = []
        for a, b in zip(t_outs, f_outs):
            if (a.dtype is None) != (b.dtype is None):
                raise NotConvertible("branch output kind mismatch",
                                     feature="control-flow")
            if a.dtype is not None and a.dtype is not b.dtype:
                raise NotConvertible("branch output dtype mismatch "
                                     "(section 4.3.1 type rule)",
                                     feature="control-flow")
            specs.append((a.shape.relax_against(b.shape), a.dtype))
        return specs

    # -- loops ---------------------------------------------------------------------------

    def _convert_while(self, stmt):
        if stmt.orelse:
            raise NotConvertible("while-else", feature="loop")
        site = self._site(stmt, "while")
        trip = self.gen.prof_trip_count(site)
        if self.gen.config.unroll_stable_control_flow and \
                trip is not None and trip <= self.gen.config.max_unroll:
            broke = False
            for _ in range(trip):
                pred = self._tensorize(self.convert_expr(stmt.test))
                self._assert_direction(pred, True, site)
                try:
                    self.convert_block(stmt.body)
                except _ContinueSignal:
                    continue
                except _BreakSignal:
                    broke = True
                    break
            if not broke:
                pred = self._tensorize(self.convert_expr(stmt.test))
                self._assert_direction(pred, False, site)
            return
        self._dynamic_loop(test_stmts=stmt, body=stmt.body, site=site)

    def _convert_for(self, stmt):
        if stmt.orelse:
            raise NotConvertible("for-else", feature="loop")
        iterable = self.convert_expr(stmt.iter)
        site = self._site(stmt, "for")
        items = self._try_static_items(iterable, site)
        if items is not None:
            if len(items) > self.gen.config.max_unroll or \
                    not self.gen.config.unroll_stable_control_flow:
                dynamic = self._as_dynamic_iterable(iterable, items)
                if dynamic is not None:
                    self._dynamic_for(stmt, dynamic, site)
                    return
            for item in items:
                self._bind_target(stmt.target, item)
                try:
                    self.convert_block(stmt.body)
                except _ContinueSignal:
                    continue
                except _BreakSignal:
                    break
            return
        dynamic = self._as_dynamic_iterable(iterable, None)
        if dynamic is None:
            raise NotConvertible("iterable %r is not convertible"
                                 % (iterable,), feature="loop")
        self._dynamic_for(stmt, dynamic, site)

    def _try_static_items(self, iterable, site):
        """Items for a statically-unrollable iterable, else None."""
        if isinstance(iterable, Const):
            v = iterable.value
            if isinstance(v, range):
                return [Const(i) for i in v]
            if isinstance(v, Shape) and v.dims is not None:
                return [Const(d) for d in v.dims]
            if isinstance(v, (list, tuple)):
                if all(isinstance(e, (bool, int, float, str)) or e is None
                       for e in v):
                    return [Const(e) for e in v]
                if all(isinstance(e, (Tensor, np.ndarray)) for e in v):
                    return [self.builder.convert(e) for e in v]
                # Heterogeneous / object lists: unroll over identities.
                return [Const(e) for e in v]
        if isinstance(iterable, SymSeq):
            return list(iterable.elements)
        if isinstance(iterable, _SymEnumerate):
            inner = self._try_static_items(iterable.inner, site)
            if inner is None:
                return None
            start = iterable.start.value \
                if isinstance(iterable.start, Const) else 0
            return [SymSeq([Const(start + i), e], is_tuple=True)
                    for i, e in enumerate(inner)]
        if isinstance(iterable, _SymZip):
            columns = [self._try_static_items(part, site)
                       for part in iterable.parts]
            if any(c is None for c in columns):
                return None
            n = min(len(c) for c in columns)
            return [SymSeq([c[i] for c in columns], is_tuple=True)
                    for i in range(n)]
        if isinstance(iterable, NodeOutput) and iterable.dtype is not None:
            dim = iterable.shape[0] if iterable.shape.dims else None
            if dim is not None and \
                    self.gen.config.unroll_stable_control_flow:
                return [api.getitem(iterable, i) for i in range(dim)]
            return None
        if isinstance(iterable, StackedList):
            return self._try_static_items(iterable.tensor, site)
        return None

    def _as_dynamic_iterable(self, iterable, static_items):
        """(count_expr, helper_env, elem_fn, salt) for a dynamic loop,
        or None.

        ``helper_env`` maps synthetic env names to graph values that must
        be carried into the loop body as invariants (the iterated tensor,
        a symbolic range start); ``elem_fn(converter, counter)`` produces
        the per-iteration element *inside* the body builder using those
        carried values.  ``salt`` extends the fragment-cache key with any
        iteration parameter the body burns in as a constant (a
        const-range start), so differently-parameterized bodies never
        alias one cached fragment.
        """
        if isinstance(iterable, SymRange):
            step = iterable.step
            if not (isinstance(step, Const) and step.value == 1):
                return None
            start = api.cast(self._tensorize(iterable.start), "int64")
            stop = api.cast(self._tensorize(iterable.stop), "int64")
            count = api.sub(stop, start)
            helpers = {"__janus_range_start__": start}

            def elem(conv, counter):
                return api.add(counter, conv.env["__janus_range_start__"])

            return count, helpers, elem, ()
        if isinstance(iterable, StackedList):
            iterable = iterable.tensor
        if isinstance(iterable, NodeOutput) and iterable.dtype is not None:
            count = self._tensorize(self._builtin_len(iterable))
            helpers = {"__janus_iterated__": iterable}

            def elem(conv, counter):
                return api.gather(conv.env["__janus_iterated__"], counter)

            return api.cast(count, "int64"), helpers, elem, ()
        if isinstance(iterable, Const) and isinstance(iterable.value, range):
            r = iterable.value
            if r.step != 1:
                return None
            count = self.builder.convert(np.int64(len(r)))
            start = r.start

            def elem(conv, counter, s=start):
                return api.add(counter, np.int64(s))

            return count, {}, elem, ("crange", start)
        return None

    def _dynamic_for(self, stmt, dynamic, site):
        count_expr, helpers, elem_fn, salt = dynamic
        for name, value in helpers.items():
            self.env[name] = value
        try:
            self._dynamic_loop(test_stmts=None, body=stmt.body, site=site,
                               count_expr=count_expr, elem_fn=elem_fn,
                               for_target=stmt.target,
                               extra_invariants=sorted(helpers),
                               fragment_salt=salt)
        finally:
            for name in helpers:
                self.env.pop(name, None)

    def _dynamic_loop(self, test_stmts, body, site, count_expr=None,
                      elem_fn=None, for_target=None,
                      extra_invariants=(), fragment_salt=()):
        """Emit a while_loop node for a dynamic while/for (section 4.2.1).

        Loop-carried state is every env name assigned in the body plus
        every graph value the body or test reads; Python lists of tensors
        crossing the boundary are lowered to stacked accumulators.
        """
        carried_names = sorted(
            n for n in assigned_names(body) if n in self.env)
        # Names assigned only inside the body are per-iteration locals;
        # if one is genuinely read before assignment (or after the loop)
        # its lookup fails during body conversion with a clear error.
        read = read_names(body)
        if test_stmts is not None:
            read |= read_names([test_stmts.test] if hasattr(
                test_stmts, "test") else [])
        invariant_names = sorted(
            set(extra_invariants) |
            {n for n in read
             if n in self.env and n not in carried_names and
             _holds_graph_value(self.env[n])})

        # Lower loop-carried state into graph edges: Python lists of
        # tensors become stacked accumulators, and build-time numbers
        # become scalar tensors (their value changes across iterations).
        for name in carried_names:
            value = self.env[name]
            if isinstance(value, SymSeq):
                self.env[name] = self._to_stacked(value, name)
            elif isinstance(value, Const) and isinstance(
                    value.value, (bool, int, float)) and \
                    not isinstance(value.value, bool):
                self.env[name] = self._tensorize(value)

        loop_names = carried_names + invariant_names
        flat_inits, structures, widths = [], [], []
        for name in loop_names:
            flat = []
            structures.append(flatten_value(self.env[name], flat))
            flat_inits.append(flat)
            widths.append(len(flat))

        counter_init = self.builder.convert(np.int64(0))
        all_inits = [counter_init] + [e for flat in flat_inits
                                      for e in flat]
        if count_expr is not None:
            # Hoist the trip count: evaluated once, carried as invariant.
            all_inits.append(api.cast(count_expr, "int64"))

        def rebind(env, placeholders):
            """Map flat loop-var placeholders back into an environment."""
            idx = 1  # skip counter
            for name, structure, width in zip(loop_names, structures,
                                              widths):
                env[name] = rebuild_value(
                    structure, iter(placeholders[idx:idx + width]))
                idx += width
            return placeholders[0], placeholders[-1] \
                if count_expr is not None else None

        key = ("loop", site, tuple(fragment_salt))
        spliced = self._splice_loop(key, loop_names, structures, all_inits,
                                    count_expr is not None)
        if spliced is not None:
            cond_func, body_func = spliced
        else:
            rec = self.gen._begin_fragment()
            try:
                # condition function
                cond_sub = GraphBuilder(name="loop_cond")
                with cond_sub:
                    phs = [cond_sub.placeholder("lv%d" % k, shape=v.shape,
                                                dtype=v.dtype)
                           for k, v in enumerate(all_inits)]
                    env = dict(self.env)
                    counter_edge, bound_edge = rebind(env, phs)
                    conv = _FunctionConverter(self.gen, self.func, env,
                                              builder=cond_sub)
                    if count_expr is not None:
                        keep = api.less(counter_edge, bound_edge)
                    else:
                        keep = conv._tensorize(
                            conv.convert_expr(test_stmts.test))
                    cond_sub.mark_outputs([keep])
                cond_func = cond_sub.finalize_function("loop_cond")

                # body function
                body_sub = GraphBuilder(name="loop_body")
                with body_sub:
                    phs = [body_sub.placeholder("lv%d" % k, shape=v.shape,
                                                dtype=v.dtype)
                           for k, v in enumerate(all_inits)]
                    env = dict(self.env)
                    counter_edge, bound_edge = rebind(env, phs)
                    conv = _FunctionConverter(self.gen, self.func, env,
                                              builder=body_sub)
                    if elem_fn is not None:
                        conv._bind_target(for_target,
                                          elem_fn(conv, counter_edge))
                    try:
                        conv.convert_block(list(body))
                    except (_BreakSignal, _ContinueSignal):
                        raise NotConvertible(
                            "break/continue inside a dynamic loop has no "
                            "graph representation", feature="break")
                    new_flat = []
                    for name, structure in zip(loop_names, structures):
                        value = conv.env[name]
                        if isinstance(value, SymSeq):
                            value = conv.env[name] = self._to_stacked(
                                value, name)
                        flat = []
                        new_structure = flatten_value(value, flat)
                        if not structures_compatible(new_structure,
                                                     structure):
                            raise NotConvertible(
                                "loop-carried %r changes structure across "
                                "iterations" % name, feature="loop")
                        new_flat.extend(flat)
                    outputs = [api.add(counter_edge, np.int64(1))] + \
                        new_flat
                    if count_expr is not None:
                        outputs.append(bound_edge)
                    body_sub.mark_outputs(outputs)
                body_func = body_sub.finalize_function("loop_body")
            finally:
                self.gen._end_fragment(rec)
            self._store_loop_fragment(key, rec, test_stmts, body,
                                      loop_names, structures, all_inits,
                                      count_expr is not None, cond_func,
                                      body_func)

        out_specs = []
        for init, out in zip(all_inits, body_func.graph.outputs):
            if init.dtype is not out.dtype and not (
                    init.dtype is None and out.dtype is None):
                raise NotConvertible("loop-carried dtype changes",
                                     feature="loop")
            out_specs.append((init.shape.relax_against(out.shape),
                              init.dtype))
        results = self.builder.while_loop(cond_func, body_func, all_inits,
                                          out_specs)
        idx = 1
        for name, structure, width in zip(loop_names, structures, widths):
            self.env[name] = rebuild_value(
                structure, iter(results[idx:idx + width]))
            idx += width

    def _loop_env_names(self, test_stmts, body, loop_names):
        names = read_names(body) | set(loop_names)
        if test_stmts is not None and hasattr(test_stmts, "test"):
            names |= read_names([test_stmts.test])
        return names

    def _splice_loop(self, key, loop_names, structures, all_inits,
                     has_bound):
        gen = self.gen
        if gen.fragments is None:
            return None
        init_specs = [(e.shape.dims, e.dtype) for e in all_inits]
        for frag in gen.fragments.lookup(key):
            if frag.loop_names != tuple(loop_names) or \
                    frag.has_bound != has_bound:
                continue
            if frag.init_specs != init_specs:
                continue
            if len(frag.structures) != len(structures) or not all(
                    structures_compatible(a, b)
                    for a, b in zip(frag.structures, structures)):
                continue
            if not frag_mod.deps_valid(frag, gen.dirty_sites):
                continue
            if not self._env_matches(frag):
                continue
            gen._adopt_fragment(key, frag)
            return frag.cond_func, frag.body_func
        gen.fragments.miss()
        return None

    def _store_loop_fragment(self, key, rec, test_stmts, body, loop_names,
                             structures, all_inits, has_bound, cond_func,
                             body_func):
        gen = self.gen
        if rec is None:
            return
        gen.fragments_reconverted += 1
        gen._record_fragment_health(key, reused=False)
        if rec.poisoned:
            return
        env_summary = self._env_summary_for(
            self._loop_env_names(test_stmts, body, loop_names), rec)
        frag = frag_mod.Fragment(
            "loop", key, rec, env_summary,
            list(gen.prechecks[rec.precheck_start:]),
            cond_func=cond_func, body_func=body_func,
            loop_names=tuple(loop_names), structures=tuple(structures),
            init_specs=[(e.shape.dims, e.dtype) for e in all_inits],
            has_bound=has_bound)
        gen.fragments.store(key, frag)

    def _to_stacked(self, seq, name):
        """Lower a SymSeq of same-shaped tensors into a StackedList."""
        if not seq.elements:
            raise NotConvertible(
                "list %r is empty at a dynamic loop boundary; "
                "cannot infer element shape" % name, feature="loop")
        tensors = [self._tensorize(e) for e in seq.elements]
        first = tensors[0]
        for t in tensors[1:]:
            if t.dtype is not first.dtype:
                raise NotConvertible("list %r mixes dtypes at a loop "
                                     "boundary" % name, feature="loop")
        return StackedList(api.stack(tensors))


def _name_in_target(target, name):
    if isinstance(target, ast.Name):
        return target.id == name
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_name_in_target(e, name) for e in target.elts)
    return False


def _holds_graph_value(value):
    if isinstance(value, (NodeOutput, StackedList)):
        return True
    if isinstance(value, SymSeq):
        return any(_holds_graph_value(e) for e in value.elements)
    if isinstance(value, SymDict):
        return any(_holds_graph_value(v) for v in value.entries.values())
    return False


def _type_only(profiled):
    if profiled is None:
        return None
    return spec.relax_constants(profiled)


def _set_load(node):
    import copy
    clone = copy.deepcopy(node)

    class _V(ast.NodeTransformer):
        def visit_Name(self, n):
            n.ctx = ast.Load()
            return n

        def visit_Attribute(self, n):
            self.generic_visit(n)
            n.ctx = ast.Load()
            return n

        def visit_Subscript(self, n):
            self.generic_visit(n)
            n.ctx = ast.Load()
            return n

    return _V().visit(clone)


class _BoundSymMethod:
    __slots__ = ("owner", "name")

    def __init__(self, owner, name):
        self.owner = owner
        self.name = name


class _SymEnumerate:
    __slots__ = ("inner", "start")

    def __init__(self, inner, start):
        self.inner = inner
        self.start = start


class _SymZip:
    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = parts

"""Python-coverage gatekeeper (paper section 4.3 and appendix A).

Before attempting conversion, the function's AST is scanned for features
the speculative graph generator deliberately does not handle.  Programs
using them are permanently routed to the imperative executor (figure 2
path (C)) — they still run, just without graph acceleration, which is
exactly the paper's "full Python coverage through the imperative
executor" guarantee.
"""

import ast

from ..errors import NotConvertible

#: feature tag -> paper section that scopes it out.
IMPERATIVE_ONLY_FEATURES = {
    "yield": "4.3.2 (generators)",
    "await": "4.3.2 (coroutines)",
    "async-for": "4.3.2 (coroutines)",
    "async-with": "4.3.2 (coroutines)",
    "inline-class": "4.3.2 (in-line class definitions)",
    "inline-import": "4.3.2 (in-line import statements)",
    "nonlocal-write": "4.3.1 (invisible state mutation)",
    "delete": "4.3.1 (invisible state mutation)",
    "starred-call": "4.3.1 (dynamic call arity)",
    "exception-handler": "Appendix A (except blocks stay imperative)",
    "custom-setattr": "4.3.1 (custom accessor functions)",
}


class _CoverageScanner(ast.NodeVisitor):
    def __init__(self):
        self.violations = []

    def _flag(self, node, feature):
        self.violations.append((feature, getattr(node, "lineno", 0)))

    def visit_Yield(self, node):
        self._flag(node, "yield")

    def visit_YieldFrom(self, node):
        self._flag(node, "yield")

    def visit_Await(self, node):
        self._flag(node, "await")

    def visit_AsyncFor(self, node):
        self._flag(node, "async-for")

    def visit_AsyncWith(self, node):
        self._flag(node, "async-with")

    def visit_AsyncFunctionDef(self, node):
        self._flag(node, "await")

    def visit_ClassDef(self, node):
        self._flag(node, "inline-class")

    def visit_Import(self, node):
        self._flag(node, "inline-import")

    def visit_ImportFrom(self, node):
        self._flag(node, "inline-import")

    def visit_Nonlocal(self, node):
        self._flag(node, "nonlocal-write")

    def visit_Delete(self, node):
        self._flag(node, "delete")

    def visit_Try(self, node):
        # try/finally converts (appendix A); except handlers do not.
        if node.handlers:
            self._flag(node, "exception-handler")
        self.generic_visit(node)

    def visit_Call(self, node):
        if any(isinstance(a, ast.Starred) for a in node.args) or \
                any(k.arg is None for k in node.keywords):
            self._flag(node, "starred-call")
        self.generic_visit(node)


def scan(fdef):
    """Return the list of (feature, lineno) coverage violations."""
    scanner = _CoverageScanner()
    for stmt in fdef.body:
        scanner.visit(stmt)
    return scanner.violations


def check_convertible(fdef):
    """Raise :class:`NotConvertible` when the AST uses scoped-out features."""
    violations = scan(fdef)
    if violations:
        feature, lineno = violations[0]
        raise NotConvertible(
            "line %d uses %s — imperative-only per paper %s"
            % (lineno, feature, IMPERATIVE_ONLY_FEATURES[feature]),
            feature=feature, lineno=lineno or None)


def has_custom_accessors(obj):
    """True when the object's class overrides attribute access.

    Such objects break the local-copy model of deferred state updates
    (paper section 4.3.1), so programs touching them stay imperative.
    """
    cls = type(obj)
    for name in ("__setattr__", "__getattr__", "__getattribute__"):
        if name in cls.__dict__:
            return True
    return False

"""JANUS runtime configuration.

The flags map one-to-one onto the optimization stages of paper figure 7:

* (BASE)  plain graph conversion — all flags off,
* +UNRL   ``unroll_stable_control_flow``: unroll branches/loops whose
  profile shows a single stable direction / trip count,
* +SPCN   ``specialize_types``: burn profiled shapes and stable values
  into the graph and run the optimization passes,
* +PARL   ``parallel_execution``: level-parallel graph schedule.
"""

import copy
import os


class JanusConfig:
    """Tunable behaviour of the speculative graph generator/executor."""

    def __init__(self,
                 profile_runs=3,
                 unroll_stable_control_flow=True,
                 specialize_types=True,
                 optimize_graph=True,
                 parallel_execution=True,
                 deferred_state_update=True,
                 max_unroll=256,
                 max_recursion_inline=0,
                 fail_on_not_convertible=False,
                 trace_level=None,
                 graph_cache_entries=64,
                 incremental_regeneration=True,
                 parallel_heavy_ops_threshold=2,
                 tensor_write_barrier=True,
                 lowering=None,
                 coexecution=None,
                 recompile_workers=0,
                 serving=None,
                 cache_dir=None,
                 cache_max_bytes=None):
        #: Imperative profiling iterations before generating a graph
        #: (the paper found 3 sufficient — section 3.1 footnote).
        self.profile_runs = profile_runs
        self.unroll_stable_control_flow = unroll_stable_control_flow
        self.specialize_types = specialize_types
        self.optimize_graph = optimize_graph
        self.parallel_execution = parallel_execution
        #: When False, heap writes go through immediate py_call mutation —
        #: the "naive PyFuncOp" strategy the paper rejects (section 4.2.3);
        #: kept for the ablation benchmark.
        self.deferred_state_update = deferred_state_update
        #: Loops with stable trip counts above this stay dynamic.
        self.max_unroll = max_unroll
        self.max_recursion_inline = max_recursion_inline
        #: Raise instead of silently falling back when a program cannot be
        #: converted (useful in tests).
        self.fail_on_not_convertible = fail_on_not_convertible
        #: Per-function observability override: None inherits the global
        #: tracer level (the JANUS_TRACE env var); 0 forces tracing off
        #: for this function, 1 records lifecycle events, 2 adds per-op
        #: timing.  See :mod:`repro.observability`.
        self.trace_level = trace_level
        #: Bound on live per-function GraphCache entries (LRU eviction
        #: beyond it; None = unbounded).  Novel-structure workloads like
        #: TreeNN generate one graph per input topology (§6.3.2) and
        #: would otherwise grow the cache without limit.
        self.graph_cache_entries = graph_cache_entries
        #: Reuse unchanged conversion fragments and seed specs from the
        #: previous CompiledGraph when regenerating after an assumption
        #: failure (§4.3 recovery).  Off = every regeneration reconverts
        #: the full AST, the behaviour before the fragment cache existed.
        self.incremental_regeneration = incremental_regeneration
        #: Minimum number of "heavy" ops (matmul/conv-class, see
        #: ``repro.graph.executor._HEAVY_OPS``) in a schedule level
        #: before the executor fans that level out across threads.
        #: Tune from a ``JANUS_TRACE=2`` trace: each ``level`` event
        #: records its op count and wall time — if wide levels of cheap
        #: ops dominate, raise the threshold to keep them serial (thread
        #: handoff costs ~10-50 µs); if single heavy levels show
        #: multi-ms serial times on a multi-core host, lower it to 1.
        self.parallel_heavy_ops_threshold = parallel_heavy_ops_threshold
        #: Extend the executor's py_get identity memo to Tensor-typed
        #: heap reads, keyed on ``(identity, TensorValue.version)``.
        #: Memoized values are sealed (numpy buffer frozen) so
        #: unsanctioned in-place mutation raises instead of bypassing a
        #: guard; sanctioned writes (``Tensor.add_`` etc.) copy-on-write
        #: and bump the version so stale memo entries miss.  Off keeps
        #: the memo restricted to immutable scalars / PyRefs (the PR-2
        #: behaviour).  See docs/compilation.md#write-barrier.
        self.tensor_write_barrier = tensor_write_barrier
        #: Lower compiled graphs into fused flat register-slot programs
        #: (docs/lowering.md).  None defers to the JANUS_LOWERING env
        #: var (default on; ``JANUS_LOWERING=0`` disables — the CI knob
        #: that keeps the node-walking fallback path green).  Lowering
        #: never affects results: unsupported constructs bail out to the
        #: node-walking executor, counted as ``lowering.bailout.*``.
        self.lowering = (os.environ.get("JANUS_LOWERING", "1") != "0") \
            if lowering is None else bool(lowering)
        #: Terra-style imperative–symbolic co-execution
        #: (docs/coexecution.md).  When whole-function conversion fails
        #: on an unsupported construct, split the function into guarded
        #: symbolic fragments and imperative gaps instead of permanently
        #: falling back.  None defers to the JANUS_COEXEC env var
        #: (default on; ``JANUS_COEXEC=0`` disables — the CI knob that
        #: keeps the all-or-nothing path green on its own).  Has no
        #: effect on functions that convert whole, and never changes
        #: results: any boundary trouble falls back whole-function
        #: imperative.
        self.coexecution = (os.environ.get("JANUS_COEXEC", "1") != "0") \
            if coexecution is None else bool(coexecution)
        #: Background regeneration workers (docs/serving.md).  0 (the
        #: default) keeps the historical inline behaviour: the caller
        #: that wins the recompile ticket pays for regeneration on its
        #: next call.  > 0 hands regenerations to a shared daemon pool
        #: so the request path never blocks on graph generation —
        #: callers are served by the imperative fallback until the new
        #: artifact is published.
        self.recompile_workers = int(recompile_workers)
        #: Serving-layer configuration: None, or a
        #: :class:`repro.serving.ServingConfig` consumed by
        #: ``repro.serving.Server`` (max batch size, linger window,
        #: queue bounds).  Held here so one JanusConfig fully describes
        #: a deployment; the core runtime ignores it.
        self.serving = serving
        #: Directory for the persistent cross-process compile cache
        #: (docs/compilation.md#persistence--warm-start).  None defers
        #: to the JANUS_CACHE_DIR env var at dispatch time; both unset
        #: disables persistence entirely (the default — no disk I/O).
        self.cache_dir = cache_dir
        #: Size bound in bytes for the cache directory (LRU eviction
        #: beyond it).  None defers to JANUS_CACHE_MAX_BYTES, default
        #: 256 MiB.
        self.cache_max_bytes = cache_max_bytes

    def resolved_cache_dir(self):
        """The effective cache directory, or None when persistence is off.

        Resolved dynamically (not at construction) so the env var works
        for configs created before it was set — e.g. the module-level
        default config in a worker that reads JANUS_CACHE_DIR from its
        launcher.
        """
        if self.cache_dir:
            return str(self.cache_dir)
        return os.environ.get("JANUS_CACHE_DIR") or None

    def resolved_cache_max_bytes(self):
        if self.cache_max_bytes is not None:
            return int(self.cache_max_bytes)
        env = os.environ.get("JANUS_CACHE_MAX_BYTES")
        if env:
            try:
                return int(env)
            except ValueError:
                pass
        return 256 * 1024 * 1024

    def copy(self, **overrides):
        new = copy.copy(self)
        for key, value in overrides.items():
            if not hasattr(new, key):
                raise AttributeError("unknown JanusConfig field %r" % key)
            setattr(new, key, value)
        return new

    def ablation_stage(self):
        """Label matching figure 7 (BASE / +UNRL / +SPCN / +PARL)."""
        if self.parallel_execution:
            return "+PARL"
        if self.specialize_types:
            return "+SPCN"
        if self.unroll_stable_control_flow:
            return "+UNRL"
        return "BASE"


#: Ablation presets, cumulative as in figure 7.
ABLATION_STAGES = {
    "BASE": dict(unroll_stable_control_flow=False, specialize_types=False,
                 optimize_graph=False, parallel_execution=False),
    "+UNRL": dict(unroll_stable_control_flow=True, specialize_types=False,
                  optimize_graph=False, parallel_execution=False),
    "+SPCN": dict(unroll_stable_control_flow=True, specialize_types=True,
                  optimize_graph=True, parallel_execution=False),
    "+PARL": dict(unroll_stable_control_flow=True, specialize_types=True,
                  optimize_graph=True, parallel_execution=True),
}

_default_config = JanusConfig()


def get_config():
    return _default_config


def set_config(config):
    global _default_config
    _default_config = config

"""Fragment cache for incremental graph regeneration.

When a speculative assumption fails at runtime, JANUS falls back to
imperative execution, relaxes the broken assumption, and regenerates the
specialized graph (paper section 4.3).  A full ``generate()`` reconverts
the entire function AST even though a single relaxed branch assumption
usually invalidates only one small region.  This module keeps the
conversion artifacts of *regions* — dynamic branch arms and dynamic loop
bodies, which ``GraphGenerator`` builds as nested ``GraphFunction``
sub-graphs — alive across regenerations so the next ``generate()`` can
splice them back in instead of reconverting them.

A fragment is valid for reuse only if everything that influenced its
original conversion is unchanged:

* the profiler state it consulted (branch directions, trip counts,
  callees, attribute/subscript specs) — recorded as *deps*, each a
  ``(label, fetch, digest)`` closure that re-queries the current
  profiler and compares digests at splice time;
* external Python values burned into the graph at build time (globals,
  closure cells, constant attributes) — recorded as value deps;
* the symbolic environment it read, summarized per name as external /
  graph-structure / burned-constant (``env_summary``), checked against
  the current environment before splicing;
* the capture plan and the exact shape/dtype of every captured edge and
  loop-init (checked structurally by the caller).

The dirty set — profiler sites whose assumptions were just relaxed —
fast-rejects any fragment that recorded a dependency on a relaxed site,
which is what makes regeneration *incremental*: only dirty regions are
reconverted, everything else splices.

Fragments whose conversion mutated shared build-time state (symbolic
list append/pop, stacked-list growth) are *poisoned* and never cached:
splicing them would skip the mutation replay.
"""

import threading

import numpy as np

from ..imperative.eager import Tensor
from ..imperative.variable import Variable
from ..tensor import TensorValue

__all__ = [
    "Fragment",
    "FragmentCache",
    "FragmentRecorder",
    "attr_digest",
    "deps_valid",
    "value_digest",
]

#: Bound on ndarray bytes digested by content; larger arrays digest by
#: identity (pinned in the keepalive list against id reuse).
_CONTENT_BYTES = 4096
#: Container recursion bounds for :func:`value_digest`.
_MAX_DEPTH = 3
_MAX_ITEMS = 32


def value_digest(value, keep=None, depth=0):
    """Summarize a Python value for change detection.

    Returns a hashable, ``==``-comparable token.  Small immutable values
    digest by content; identity-digested objects are appended to *keep*
    so the fragment pins them alive (a garbage-collected id could be
    reused by an unrelated object and alias the digest).
    """
    if value is None or isinstance(value, (bool, int, float, complex,
                                           str, bytes)):
        return ("val", type(value).__name__, value)
    if isinstance(value, Variable):
        return ("var", value.uid)
    if isinstance(value, (Tensor, TensorValue, np.ndarray)):
        tv = value.value if isinstance(value, Tensor) \
            else value if isinstance(value, TensorValue) else None
        if tv is not None and (tv.tracked or tv.track()):
            # Write-barrier fast path: a sealed TensorValue cannot
            # change content under an unchanged (identity, version)
            # pair, so the version stamp replaces content hashing.
            # Untracked but trackable values are sealed *here* so the
            # digest kind never flips untracked→tracked between
            # generations (a flip would reject every fragment depending
            # on the value once on the first regeneration after
            # sealing, despite identical content).  ``track()`` refuses
            # views/borrowed buffers/barrier-off, which keep content
            # digests consistently.  Pinned for the same id-reuse
            # reason as the slow path.
            if keep is not None:
                keep.append(tv)
            return ("tvv", id(tv), tv.version)
        arr = np.asarray(tv.array if tv is not None else value)
        if arr.nbytes <= _CONTENT_BYTES:
            return ("arr", str(arr.dtype), arr.shape, arr.tobytes())
        if keep is not None:
            keep.append(value)
        return ("arrid", id(value))
    if isinstance(value, range):
        return ("range", value.start, value.stop, value.step)
    if isinstance(value, (list, tuple)):
        if depth >= _MAX_DEPTH or len(value) > _MAX_ITEMS:
            if keep is not None:
                keep.append(value)
            return ("seqid", id(value), len(value))
        return (type(value).__name__,
                tuple(value_digest(v, keep, depth + 1) for v in value))
    if isinstance(value, dict):
        if depth >= _MAX_DEPTH or len(value) > _MAX_ITEMS:
            if keep is not None:
                keep.append(value)
            return ("mapid", id(value), len(value))
        try:
            items = sorted(value.items())
        except TypeError:
            items = list(value.items())
        return ("map", tuple((value_digest(k, keep, depth + 1),
                              value_digest(v, keep, depth + 1))
                             for k, v in items))
    # Functions, modules, classes, arbitrary objects: identity.  These
    # are burned in by reference, so identity is exactly the contract.
    if keep is not None:
        keep.append(value)
    return ("objid", id(value))


def attr_digest(obj, name, keep=None):
    """Digest ``obj.name`` for a heap-attribute dependency.

    Tensor-valued attributes are read through ``py_get_attr`` nodes at
    run time (guarded by the spec, not burned in), so their *value* is
    irrelevant to the fragment — only the spec matters, and that is
    recorded separately.
    """
    try:
        value = getattr(obj, name)
    except AttributeError:
        return ("miss",)
    if isinstance(value, (Tensor, TensorValue, np.ndarray)):
        return ("dyn",)
    return value_digest(value, keep)


class FragmentRecorder:
    """Accumulates the dependency record while a region converts."""

    __slots__ = ("deps", "dep_sites", "keepalive", "poisoned",
                 "precheck_start")

    def __init__(self, precheck_start=0):
        self.deps = []           # (label, fetch, digest)
        self.dep_sites = set()   # profiler sites consulted
        self.keepalive = []      # objects pinned for id-digest validity
        self.poisoned = False    # build-time side effects: do not cache
        self.precheck_start = precheck_start


class Fragment:
    """One cached conversion artifact for an AST region.

    ``kind`` is ``"cond"`` or ``"loop"``; the remaining payload fields
    are whatever the splice site needs to rebuild its builder call
    (branch/loop sub-``GraphFunction``s, output structure, capture plan,
    exact edge specs).  Validation data: ``deps``/``dep_sites`` from the
    recorder, ``env_summary`` mapping read names to how they resolved,
    and the precheck entries minted during the original conversion.
    """

    def __init__(self, kind, key, recorder, env_summary, prechecks,
                 **payload):
        self.kind = kind
        self.key = key
        self.deps = recorder.deps
        self.dep_sites = frozenset(recorder.dep_sites)
        self.keepalive = recorder.keepalive
        self.env_summary = env_summary
        self.precheck_entries = prechecks
        self.__dict__.update(payload)


def deps_valid(frag, dirty_sites):
    """Whether every recorded dependency still holds.

    Dirty sites (just-relaxed assumptions) reject without re-querying:
    the whole point of the dirty set is that those regions *must*
    reconvert.  Everything else re-fetches and compares digests.
    """
    if dirty_sites and not frag.dep_sites.isdisjoint(dirty_sites):
        return False
    for _label, fetch, digest in frag.deps:
        try:
            if fetch() != digest:
                return False
        except Exception:
            return False
    return True


class FragmentCache:
    """Per-``JanusFunction`` store of reusable fragments.

    Keys identify the AST region (profiler site plus a salt for loops
    whose body burned in iteration parameters); each key holds a short
    MRU list of variants because the same site can convert differently
    under different environments (e.g. different capture shapes across
    call signatures).
    """

    #: Variants kept per region key.
    MAX_VARIANTS = 4

    def __init__(self):
        # Regenerations are serialized per function, but fragment reads
        # can race a concurrent profiler-driven store under multi-tenant
        # dispatch; one narrow lock keeps the MRU lists and hit/miss
        # tallies consistent.
        self._lock = threading.Lock()
        self._by_key = {}
        self.stats = {"hits": 0, "misses": 0, "stores": 0}

    def lookup(self, key):
        """All cached variants for *key* (MRU first, copied)."""
        with self._lock:
            return tuple(self._by_key.get(key, ()))

    def touch(self, key, frag):
        """Move *frag* to the front of its variant list after a hit."""
        with self._lock:
            variants = self._by_key.get(key)
            if variants and frag in variants:
                variants.remove(frag)
                variants.insert(0, frag)
            self.stats["hits"] += 1

    def store(self, key, frag):
        with self._lock:
            variants = self._by_key.setdefault(key, [])
            variants.insert(0, frag)
            del variants[self.MAX_VARIANTS:]
            self.stats["stores"] += 1

    def miss(self):
        with self._lock:
            self.stats["misses"] += 1

    def clear(self):
        with self._lock:
            self._by_key.clear()

    def __len__(self):
        with self._lock:
            return sum(len(v) for v in self._by_key.values())

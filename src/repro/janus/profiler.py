"""Runtime profiler (paper figure 2 (A)).

A :class:`Profiler` is the recorder object the instrumented clone reports
to.  It accumulates, per syntactic site:

* branch directions (stable / unstable),
* loop trip counts and iterable kinds,
* callee identity per call site (and recursively instruments user-defined
  callees so profiling covers inlined code — the bytecode-level coverage
  of the paper's modified interpreter),
* attribute/subscript reads with value specs on the specialization
  lattice,
* per-function return-value specs (needed to type recursive calls).

Everything the graph generator later consumes is exposed through the
``branch_direction`` / ``trip_count`` / ``attr_spec`` / ... accessors,
each of which answers ``None`` for "no stable assumption available".
"""

import builtins
import threading
import types

import time

from ..errors import NotConvertible
from ..observability import HEALTH, METRICS, TRACER
from . import specialization as spec
from .instrument import instrument_function, function_key
from .whitelist import is_whitelisted


class SiteProfile:
    """Aggregated observations at one syntactic site."""

    __slots__ = ("kind", "true_count", "false_count", "trip_counts",
                 "callees", "owner_spec", "value_spec", "iterable_spec",
                 "forced_dynamic", "per_owner")

    def __init__(self, kind):
        self.kind = kind
        self.true_count = 0
        self.false_count = 0
        self.trip_counts = set()
        self.callees = set()
        self.owner_spec = None
        self.value_spec = None
        self.iterable_spec = None
        # Layer code is shared by many instances, so one source site sees
        # attribute values from several owners (e.g. Conv2D.strides is 1
        # for some convs and 2 for others).  Per-owner specs keep each
        # object's assumption precise; the merged value_spec remains the
        # fallback for dynamic owners.
        self.per_owner = {}        # id(owner) -> (owner, ValueSpec)
        #: Set when a runtime assertion for this site failed: the site is
        #: no longer eligible for unrolling (assumption relaxation).
        self.forced_dynamic = False


class Profiler:
    """Recorder for one JanusFunction; also the instrumented-clone cache."""

    def __init__(self):
        self.sites = {}
        self.return_specs = {}      # function_key -> ValueSpec
        self._arg_specs = {}        # signature -> list[ValueSpec]
        self.runs = 0
        self._instrumented = {}     # underlying function -> clone
        self._while_counts = {}     # live trip counters for while sites
        self.enabled = False
        #: Owning janus.function name for health attribution (set by
        #: the JanusFunction constructor; None for standalone use).
        self.owner = None
        #: Guards every read-modify-write on the site table and the
        #: spec merges — concurrent profiled fallbacks (multi-tenant
        #: dispatch) must not lose a relaxation or duplicate a site.
        #: RLock: ``relax_attr_spec`` can recurse through ``merge``
        #: into recorder callbacks on exotic specs.
        self._lock = threading.RLock()

    # -- site bookkeeping ---------------------------------------------------

    def _get_site(self, site, kind):
        with self._lock:
            entry = self.sites.get(site)
            if entry is None:
                entry = SiteProfile(kind)
                self.sites[site] = entry
            return entry

    # -- recorder callbacks (called from instrumented code) -------------------

    def branch(self, site, test):
        value = bool(test)
        entry = self._get_site(site, "branch")
        with self._lock:
            if value:
                entry.true_count += 1
            else:
                entry.false_count += 1
        return value

    def while_test(self, site, test):
        value = bool(test)
        entry = self._get_site(site, "loop")
        with self._lock:
            counter = self._while_counts.get(site, 0)
            if value:
                self._while_counts[site] = counter + 1
            else:
                entry.trip_counts.add(counter)
                self._while_counts[site] = 0
        return value

    def loop(self, site, iterable):
        entry = self._get_site(site, "loop")
        with self._lock:
            entry.iterable_spec = spec.merge(entry.iterable_spec,
                                             spec.observe(iterable))
        count = 0
        for item in iterable:
            count += 1
            yield item
        # Lock only the bookkeeping — never across the yields above.
        with self._lock:
            entry.trip_counts.add(count)

    def call(self, site, callee):
        entry = self._get_site(site, "call")
        target = getattr(callee, "__func__", callee)
        with self._lock:
            entry.callees.add(target)
        resolved = self._resolve_callable(callee)
        if resolved is not None:
            func, self_obj = resolved
            if self._should_instrument(func):
                clone = self._instrument(func)
                if self_obj is not None:
                    return types.MethodType(clone, self_obj)
                return clone
        return callee

    @staticmethod
    def _resolve_callable(callee):
        """(function, bound self or None) behind any callable, or None.

        Callable objects (layers, models) resolve to their ``__call__`` —
        or directly to ``call`` when ``__call__`` is the generic
        Module forwarder — so profiling reaches the code JANUS inlines.
        """
        if isinstance(callee, types.FunctionType):
            return callee, None
        if isinstance(callee, types.MethodType):
            return callee.__func__, callee.__self__
        call_fn = getattr(type(callee), "__call__", None)
        if isinstance(call_fn, types.FunctionType):
            from ..nn.module import Module
            if isinstance(callee, Module) and call_fn is Module.__call__:
                call_fn = type(callee).call
            if isinstance(call_fn, types.FunctionType):
                return call_fn, callee
        return None

    def attr(self, site, owner, name):
        value = getattr(owner, name)
        entry = self._get_site(site, "attr")
        with self._lock:
            entry.owner_spec = spec.merge(entry.owner_spec,
                                          spec.observe(owner))
            observed = spec.observe(value)
            entry.value_spec = spec.merge(entry.value_spec, observed)
            prior = entry.per_owner.get(id(owner))
            entry.per_owner[id(owner)] = (
                owner, spec.merge(prior[1] if prior else None, observed))
        return value

    def subscr(self, site, owner, key):
        value = owner[key]
        entry = self._get_site(site, "subscr")
        with self._lock:
            entry.owner_spec = spec.merge(entry.owner_spec,
                                          spec.observe(owner))
            if not isinstance(key, slice):
                entry.value_spec = spec.merge(entry.value_spec,
                                              spec.observe(value))
        return value

    def ret(self, site, value):
        func_key = site[0]
        with self._lock:
            self.return_specs[func_key] = spec.merge(
                self.return_specs.get(func_key), spec.observe(value))
        return value

    def record_args(self, args, signature=None):
        observed = [spec.observe(a) for a in args]
        if signature is None:
            signature = tuple(o.signature() for o in observed)
        with self._lock:
            prior = self._arg_specs.get(signature)
            if prior is None:
                self._arg_specs[signature] = observed
            else:
                self._arg_specs[signature] = [
                    spec.merge(a, b) for a, b in zip(prior, observed)]
        return signature

    def arg_specs_for(self, signature):
        return self._arg_specs.get(signature)

    @property
    def arg_specs(self):
        """Specs of the most recently profiled signature (legacy)."""
        if not self._arg_specs:
            return None
        return next(reversed(self._arg_specs.values()))

    # -- instrumentation of callees ----------------------------------------------

    def _should_instrument(self, target):
        if not isinstance(target, types.FunctionType):
            return False
        if is_whitelisted(target):
            return False
        module = getattr(target, "__module__", "") or ""
        if module == "builtins" or module.startswith("numpy"):
            return False
        # Never re-instrument our own runtime; nn/models hold convertible
        # user-level code and profile like any other program.
        if module.startswith("repro.") and not module.startswith(
                "repro.nn") and not module.startswith("repro.models"):
            return False
        return True

    def _instrument(self, callee):
        target = getattr(callee, "__func__", callee)
        clone = self._instrumented.get(target)
        if clone is None:
            try:
                clone = instrument_function(target, self)
            except (NotConvertible, SyntaxError):
                clone = target
            self._instrumented[target] = clone
        if hasattr(callee, "__self__"):
            return types.MethodType(clone, callee.__self__)
        return clone

    # -- accessors for the graph generator ------------------------------------------

    def branch_direction(self, site):
        """True/False when the branch was always taken one way, else None."""
        entry = self.sites.get(site)
        if entry is None or entry.forced_dynamic:
            return None
        if entry.true_count and not entry.false_count:
            return True
        if entry.false_count and not entry.true_count:
            return False
        return None

    def trip_count(self, site):
        """The stable trip count of a loop site, or None."""
        entry = self.sites.get(site)
        if entry is None or entry.forced_dynamic:
            return None
        if len(entry.trip_counts) == 1:
            return next(iter(entry.trip_counts))
        return None

    def callee(self, site):
        """The single observed callee at a call site, or None."""
        entry = self.sites.get(site)
        if entry is None or len(entry.callees) != 1:
            return None
        return next(iter(entry.callees))

    def attr_spec(self, site, owner=None):
        entry = self.sites.get(site)
        if entry is None:
            return None
        if owner is not None:
            per_owner = entry.per_owner.get(id(owner))
            if per_owner is not None and per_owner[0] is owner:
                return per_owner[1]
        return entry.value_spec

    def subscr_spec(self, site):
        entry = self.sites.get(site)
        return entry.value_spec if entry else None

    def return_spec(self, func):
        return self.return_specs.get(function_key(func))

    def force_dynamic(self, site):
        """Relaxation hook: a runtime assert at this site failed."""
        entry = self.sites.get(site)
        if entry is not None:
            entry.forced_dynamic = True
            if TRACER.level:
                TRACER.instant("relax", "force_dynamic", site=repr(site),
                               kind=entry.kind)
            if METRICS.enabled and self.owner is not None:
                HEALTH.function(self.owner).record_relax(
                    site, "force_dynamic", kind=entry.kind)

    def relax_attr_spec(self, site, observed_value):
        entry = self.sites.get(site)
        if entry is not None:
            observed = spec.observe(observed_value)
            before = entry.value_spec
            entry.value_spec = spec.merge(entry.value_spec, observed)
            if TRACER.level:
                TRACER.instant("relax", "attr_spec", site=repr(site),
                               before=spec.describe(before),
                               after=spec.describe(entry.value_spec))
            if METRICS.enabled and self.owner is not None:
                HEALTH.function(self.owner).record_relax(
                    site, "attr_spec", kind=entry.kind,
                    detail="%s -> %s" % (spec.describe(before),
                                         spec.describe(entry.value_spec)))
            for owner_id, (owner, prior) in list(entry.per_owner.items()):
                entry.per_owner[owner_id] = (owner,
                                             spec.merge(prior, observed))
            if entry.value_spec.kind == spec.BOTTOM:
                entry.forced_dynamic = True

    def profile_call(self, func, args):
        """Run one profiled imperative execution of ``func``."""
        self._while_counts.clear()
        clone = self._instrument(func)
        self.record_args(args)
        self.runs += 1
        profile_start = time.perf_counter() if METRICS.enabled else 0.0
        result = clone(*args)
        if profile_start:
            METRICS.observe("profile.run",
                            time.perf_counter() - profile_start)
        self.return_specs[function_key(func)] = spec.merge(
            self.return_specs.get(function_key(func)), spec.observe(result))
        return result

"""The JANUS public API: the :func:`function` decorator.

A decorated function follows the execution model of paper figure 2:

1. the first ``profile_runs`` calls execute imperatively under the
   Profiler (A);
2. the Speculative Graph Generator then converts the program, specialized
   to the profiled context assumptions (B), unless it uses imperative-only
   features (C);
3. subsequent calls with matching precheckable assumptions run the cached
   symbolic graph (D);
4. a failed runtime assertion aborts the graph *before any state update*
   (all-or-nothing), falls back to the imperative executor, relaxes the
   broken assumption, and regenerates (E).

``@janus.function(optimizer=opt)`` marks a *training* function: the body
returns a loss, and JANUS automatically appends gradient computation and
parameter-update operations to the generated graph (and uses a gradient
tape on the imperative path) — the paper's transparent handling of
automatic differentiation (section 3).

**Concurrency.**  A :class:`JanusFunction` may be called from many
threads at once (the multi-tenant serving layer in
:mod:`repro.serving` does exactly that).  Dispatch is RCU-style:
callers take the *read* side of a per-function
:class:`~repro.janus.concurrency.RWLock` only for the cheap
lookup-and-precheck, pin the :class:`CompiledGraph` they retrieved, and
execute it outside the lock, so warm callers never serialize on each
other.  Artifact transitions (retiring a failed entry, publishing a
regenerated one) take the write side — a pointer swap, never a compile.
Compilation itself is single-flight: per-signature tickets
(:class:`~repro.janus.concurrency.TicketTable`) guarantee that a
cold-start stampede produces one compile and an assumption-failure
storm produces one regeneration; every other caller is served by the
imperative fallback (§4.3 recovery) in the meantime.  With
``JanusConfig.recompile_workers > 0`` the ticket winner hands the
regeneration to a shared background pool and *also* falls back
imperatively, so the request path never blocks on graph generation.
"""

import functools
import threading
import time

from ..errors import AssumptionFailed, NotConvertible
from ..imperative.tape import GradientTape
from ..observability import COUNTERS, DISKCACHE, HEALTH, METRICS, \
    TRACER, override_level, reqtrace
from . import coexec as coexec_mod
from . import diskcache as diskcache_mod
from .cache import CacheEntry, GraphCache
from .compiled import RegenerationSeed, compile_generated, load_compiled
from .concurrency import RWLock, TicketTable, recompile_pool
from .config import get_config
from .fragments import FragmentCache
from .graphgen import GraphGenerator
from .profiler import Profiler


#: Sentinels: "not yet computed" for the source-hash memo and "no warm
#: start happened" for the disk-probe fast path.
_UNSET = object()
_WARM_MISS = object()


class JanusFunction:
    """A Python function accelerated by speculative graph execution."""

    def __init__(self, func, optimizer=None, config=None):
        self.func = func
        self.optimizer = optimizer
        self._config = config
        self.profiler = Profiler()
        self.cache = GraphCache(max_entries=self.config.graph_cache_entries)
        #: Reusable conversion fragments surviving across regenerations
        #: (incremental regeneration, §4.3 recovery).
        self._fragment_cache = FragmentCache()
        #: Profiler sites relaxed since the last successful generate —
        #: the dirty set handed to the incremental generator.
        self._dirty_sites = set()
        self.imperative_only = False
        self.not_convertible_reason = None
        #: Human-readable description of the most recent failed runtime
        #: assumption (None until a fallback happens).
        self.last_assumption_failure = None
        self.stats = {
            "calls": 0, "imperative_runs": 0, "graph_runs": 0,
            "fallbacks": 0, "graphs_generated": 0,
            "recompile_tickets": 0, "stampede_fallbacks": 0,
            "warm_starts": 0, "coexec_runs": 0,
            "coexec_fragment_runs": 0,
        }
        #: Terra-style co-execution schedule (docs/coexecution.md),
        #: installed when whole-function conversion fails on an
        #: unsupported construct but the body can be partitioned into
        #: symbolic fragments and imperative gaps.  None otherwise.
        self._coexec_plan = None
        #: RCU-style artifact slot: readers (warm callers) share it for
        #: lookup + precheck and execute the pinned artifact outside it;
        #: writers hold it only for the retire/publish pointer swaps.
        self._artifact_lock = RWLock()
        #: Per-signature single-flight compile tickets.
        self._tickets = TicketTable()
        #: Serializes graph generation (the generator reads and splices
        #: shared profiler/fragment state); never held on the warm path.
        self._generate_lock = threading.RLock()
        #: Narrow locks for the shared mutable scalars.
        self._stats_lock = threading.Lock()
        self._dirty_lock = threading.Lock()
        #: Warm-start bookkeeping (docs/compilation.md#persistence--warm-start):
        #: signatures whose disk probe already happened (probe once, then
        #: the in-memory tiers own the signature) and the memoized source
        #: hash keying this function's disk entries.
        self._disk_probed = set()
        self._disk_lock = threading.Lock()
        self._src_hash = _UNSET
        functools.update_wrapper(self, func)
        # Speculation-health attribution (populated only while METRICS
        # is enabled): the profiler and cache report relaxations and
        # churn under this function's name.
        self.profiler.owner = self.__name__
        self.cache.owner = self.__name__

    # -- configuration -----------------------------------------------------

    @property
    def config(self):
        return self._config if self._config is not None else get_config()

    def with_config(self, **overrides):
        """A copy of this function under different JanusConfig flags."""
        new = JanusFunction(self.func, optimizer=self.optimizer,
                            config=self.config.copy(**overrides))
        return new

    # -- the execution model (figure 2) ---------------------------------------

    def __call__(self, *args):
        cfg_level = self.config.trace_level
        if cfg_level is not None and cfg_level != TRACER.level:
            with override_level(cfg_level):
                return self._dispatch(args)
        return self._dispatch(args)

    def _dispatch(self, args):
        """One metrics wrapper around the whole dispatch decision.

        ``dispatch.latency`` is windowed: the trailing-minute p95 over
        every outcome (warm hit, fallback, recompile, ...) is the
        per-function signal the serving layer's SLO view reads.
        """
        if not METRICS.enabled:
            return self._call(args)
        start = time.perf_counter()
        try:
            return self._call(args)
        finally:
            METRICS.observe_windowed("dispatch.latency",
                                     time.perf_counter() - start)

    def _inc(self, key, amount=1):
        with self._stats_lock:
            self.stats[key] += amount

    def _call(self, args):
        args = tuple(_ensure_tensor(a) for a in args)
        self._inc("calls")
        health = HEALTH.function(self.__name__) if METRICS.enabled \
            else None
        if health is not None:
            health.record_call()
        if self.imperative_only:
            if health is not None:
                health.record_imperative_run()
            return self._run_imperative(args, profile=False)
        plan = self._coexec_plan
        if plan is not None:
            return self._run_coexec(plan, args, health)
        if self.profiler.runs < self.config.profile_runs:
            # Warm start: with a disk cache configured, probe it (once
            # per signature) before paying a single profiling run — a
            # warm worker's first call goes straight to _run_graph.
            # With no cache dir configured this branch is one None
            # check, byte-identical to the historical profiling path.
            store = self._disk_store()
            if store is not None:
                result = self._warm_start(store, args, health)
                if result is not _WARM_MISS:
                    return result
            if health is not None:
                health.record_profile_run()
            return self._run_imperative(args, profile=True)

        signature = self.cache.signature_of(args)
        # Read-side critical section: lookup + precheck only.  The
        # retrieved entry is pinned and executed *after* the lock drops
        # (RCU), so a slow graph run never delays an artifact swap and a
        # swap never delays other warm callers.
        with self._artifact_lock.read():
            entry = self.cache.lookup(signature)
            fresh = entry is not None and not entry.dirty
            valid = fresh and self._checked_preconditions(entry.compiled,
                                                          args)
        if fresh:
            if valid:
                self.cache.record_hit(entry)
                if TRACER.level:
                    TRACER.instant("cache_hit", self.__name__,
                                   hits=entry.hits)
                return self._run_graph(entry, args, signature, health)
            # Cache miss on precheck: relax + regenerate on the next call.
            self.cache.record_miss(entry)
            if TRACER.level:
                TRACER.instant("cache_miss", self.__name__,
                               reason="precheck_failed")
            self._retire_entry(signature)
            self.profiler.record_args(list(args))
            if health is not None:
                health.record_profile_run()
            return self._run_imperative(args, profile=True)

        if TRACER.level:
            TRACER.instant("cache_miss", self.__name__,
                           reason="no_entry", signature=repr(signature))
        if not self._tickets.claim(signature):
            # Another caller already owns the compile for this signature
            # (cold-start stampede or a background regeneration still in
            # flight): serve imperatively, do not duplicate the work.
            self._inc("stampede_fallbacks")
            COUNTERS.inc("dispatch.stampede_fallbacks")
            reqtrace.note("fallback", "stampede_loss",
                          flag="stampede_loss", function=self.__name__)
            if health is not None:
                health.record_imperative_run()
            return self._run_imperative(args, profile=False)
        try:
            with self._generate_lock:
                compiled = self._generate(signature)
            if compiled is None:
                # A co-execution plan may have been installed instead of
                # the imperative-only verdict; this call still serves
                # imperatively, the next one dispatches the plan.
                if health is not None:
                    if self._coexec_plan is None:
                        health.record_imperative_only()
                    health.record_imperative_run()
                return self._run_imperative(args, profile=False)
            entry = CacheEntry(compiled)
            self.cache.max_entries = self.config.graph_cache_entries
            with self._artifact_lock.write():
                self.cache.store(signature, entry)
            self._inc("graphs_generated")
            self._publish_disk(signature, compiled)
        finally:
            self._tickets.release(signature)
        if not self._checked_preconditions(compiled, args):
            self.cache.record_miss(entry)
            self.profiler.record_args(list(args))
            if health is not None:
                health.record_profile_run()
            return self._run_imperative(args, profile=True)
        self.cache.record_hit(entry)
        return self._run_graph(entry, args, signature, health)

    @staticmethod
    def _checked_preconditions(compiled, args):
        """Run the entry's precheck, timing it when metrics are on."""
        if not METRICS.enabled:
            return compiled.check_preconditions(args)
        start = time.perf_counter()
        try:
            return compiled.check_preconditions(args)
        finally:
            METRICS.observe("guard.precheck",
                            time.perf_counter() - start)

    def _retire_entry(self, signature):
        """Invalidate a cache entry, keeping its artifact as a seed.

        Called after an assumption failure or failed precheck: the old
        CompiledGraph still holds the bound arg specs the regeneration
        can reuse, and the dirty set accumulated by ``_relax`` tells the
        incremental generator which fragments must reconvert.  Runs
        under the artifact write lock so concurrent readers see either
        the old entry or none — never a half-retired state.
        """
        with self._dirty_lock:
            dirty = frozenset(self._dirty_sites)
        with self._artifact_lock.write():
            entry = self.cache.invalidate(signature)
            if entry is not None:
                self.cache.remember_seed(
                    signature, RegenerationSeed(entry.compiled, dirty))

    # -- persistent cross-process cache (warm start) -------------------------

    def _disk_store(self):
        """The configured DiskGraphStore, or None (the default)."""
        return diskcache_mod.store_for(self.config)

    def _source_hash(self):
        if self._src_hash is _UNSET:
            self._src_hash = diskcache_mod.source_hash(self.func)
        return self._src_hash

    def _should_persist(self, signature):
        """Snapshot a serializable payload during this compile?"""
        return (signature is not None
                and diskcache_mod.signature_portable(signature)
                and self._disk_store() is not None
                and self._source_hash() is not None)

    def _disk_key(self, signature):
        src = self._source_hash()
        if src is None or not diskcache_mod.signature_portable(signature):
            return None
        return diskcache_mod.entry_key(src, signature, self.config)

    def _publish_disk(self, signature, compiled):
        """Publish a freshly-compiled artifact to the disk tier."""
        store = self._disk_store()
        if store is None or signature is None:
            return
        payload = compiled.take_payload()
        if payload is None:
            if compiled.portable_skip is not None:
                DISKCACHE.record_store_skip()
            return
        key = self._disk_key(signature)
        if key is None:
            return
        store.store(key, payload, graph_name=compiled.graph.name)
        with self._disk_lock:
            # The producer never needs to probe its own publication.
            self._disk_probed.add(signature)

    def _warm_start(self, store, args, health):
        """Dispatch against the in-memory/disk tiers while still in the
        profiling phase.

        Returns ``_WARM_MISS`` when the caller should fall through to a
        normal profiling run.  The disk store is probed at most once
        per signature; a hit is compiled back into a full artifact,
        published to the in-memory cache, and run — zero profiling runs.
        """
        signature = self.cache.signature_of(args)
        with self._artifact_lock.read():
            entry = self.cache.lookup(signature)
            valid = entry is not None and not entry.dirty and \
                self._checked_preconditions(entry.compiled, args)
        if valid:
            self.cache.record_hit(entry)
            return self._run_graph(entry, args, signature, health)
        with self._disk_lock:
            probed = signature in self._disk_probed
            self._disk_probed.add(signature)
        if probed:
            return _WARM_MISS
        key = self._disk_key(signature)
        if key is None:
            # Identity-bearing signature or unknowable source: this
            # function/specialization can never live on disk.
            DISKCACHE.record_miss("unportable")
            COUNTERS.inc("diskcache.misses.unportable")
            return _WARM_MISS
        compiled = store.load(
            key, rebuild=lambda payload: load_compiled(
                payload, self.config, signature=signature))
        if compiled is None:
            return _WARM_MISS
        entry = CacheEntry(compiled)
        self.cache.max_entries = self.config.graph_cache_entries
        with self._artifact_lock.write():
            self.cache.store(signature, entry)
        self._inc("warm_starts")
        COUNTERS.inc("dispatch.warm_starts")
        if TRACER.level:
            TRACER.instant("cache_hit", self.__name__, source="disk",
                           signature=repr(signature))
        if not self._checked_preconditions(compiled, args):
            # Loaded but its burned-in assumptions don't hold here (e.g.
            # a changed module global): profile imperatively; the normal
            # dispatch will retire the entry and regenerate.
            return _WARM_MISS
        self.cache.record_hit(entry)
        return self._run_graph(entry, args, signature, health)

    def _generate(self, signature=None):
        """Generate and compile: returns a CompiledGraph artifact (or
        None when the function is imperative-only).  Conversion and
        executor compilation happen together, inside one ``graphgen``
        span — the compile-once point of the pipeline."""
        regeneration = self.stats["graphs_generated"] > 0
        gen_start = time.perf_counter() if METRICS.enabled else 0.0
        with TRACER.span("graphgen", self.__name__,
                         regeneration=regeneration):
            try:
                incremental = self.config.incremental_regeneration
                seed = self.cache.take_seed(signature) \
                    if incremental else None
                with self._dirty_lock:
                    dirty_snapshot = frozenset(self._dirty_sites)
                dirty = dirty_snapshot
                if seed is not None:
                    dirty |= seed.dirty_sites
                generator = GraphGenerator(
                    self.func, self.profiler, self.config,
                    optimizer=self.optimizer, signature=signature,
                    fragments=self._fragment_cache if incremental else None,
                    dirty_sites=dirty, seed=seed)
                generated = generator.generate()
                # The reconverted graph no longer embeds the relaxed
                # assumptions; retiring them from the dirty set lets
                # fragments recorded during THIS conversion (which
                # legitimately depend on the now-relaxed sites) be
                # reused next time.  Only the snapshot is removed:
                # sites relaxed by a *concurrent* failure while this
                # generation ran were not consumed and must stay dirty
                # (a plain clear() would lose them).
                with self._dirty_lock:
                    self._dirty_sites -= dirty_snapshot
                compiled = compile_generated(
                    generated, self.config, signature=signature,
                    persist=self._should_persist(signature))
                if gen_start:
                    elapsed = time.perf_counter() - gen_start
                    METRICS.observe("graphgen.recompile" if regeneration
                                    else "graphgen.initial", elapsed)
                    health = HEALTH.function(self.__name__)
                    health.record_generation(elapsed, regeneration)
                    health.record_lowering(
                        compiled.lowered is not None, compiled.fused_ops,
                        reason=compiled.lowering_bailout)
                return compiled
            except NotConvertible as exc:
                if not self.config.fail_on_not_convertible \
                        and self.config.coexecution \
                        and self._coexec_plan is None:
                    plan = coexec_mod.build_plan(self, exc)
                    if plan is not None:
                        # Terra-style partial conversion: keep the
                        # convertible regions symbolic instead of going
                        # whole-function imperative (docs/coexecution.md).
                        self._coexec_plan = plan
                        self.not_convertible_reason = str(exc)
                        return None
                # Figure 2 (C): permanently imperative-only.
                self.imperative_only = True
                self.not_convertible_reason = str(exc)
                if TRACER.level:
                    TRACER.instant("fallback", self.__name__,
                                   reason="not_convertible",
                                   feature=exc.feature, detail=str(exc))
                if self.config.fail_on_not_convertible:
                    raise
                return None

    def _run_graph(self, entry, args, signature, health=None):
        compiled = entry.compiled
        feeds = compiled.bind_feeds(args)
        try:
            flat = compiled.run_flat(feeds)
        except AssumptionFailed as exc:
            # Figure 2 (E): no state was committed; fall back, relax,
            # regenerate with the broken assumption removed.  Under
            # concurrency every caller pinned to the failing artifact
            # observes the failure, but exactly one wins the recompile
            # ticket and owns relax + retire + regeneration; the rest
            # go straight to the imperative fallback.
            self.cache.record_failure(entry)
            self._inc("fallbacks")
            self.last_assumption_failure = str(exc)
            if TRACER.level:
                TRACER.instant("assumption_fail", self.__name__,
                               guard=str(exc), site=repr(exc.site))
                TRACER.instant("fallback", self.__name__,
                               reason="assumption_failed", guard=str(exc))
                reqtrace.flag("fallback")
            else:
                reqtrace.note("fallback", self.__name__, flag="fallback",
                              reason="assumption_failed")
            site, kind = _failure_site(exc)
            if health is not None:
                health.record_failure(site, kind=kind, guard=str(exc))
            if self._tickets.claim(signature):
                self._inc("recompile_tickets")
                COUNTERS.inc("dispatch.recompile_tickets")
                reqtrace.note("graphgen", "recompile_ticket",
                              flag="recompile", function=self.__name__)
                background = self.config.recompile_workers > 0
                try:
                    self._relax(exc)
                    self._retire_entry(signature)
                finally:
                    if not background:
                        # Inline mode: the next call regenerates (under
                        # its own cold-path ticket) — the historical
                        # single-caller behaviour.
                        self._tickets.release(signature)
                if background:
                    # The ticket travels with the background job; cold
                    # callers for this signature keep falling back until
                    # the regenerated artifact is published.
                    COUNTERS.inc("dispatch.background_recompiles")
                    reqtrace.note("graphgen", "background_recompile",
                                  function=self.__name__)
                    recompile_pool(self.config.recompile_workers).submit(
                        self._background_regenerate, signature)
            # The measured fallback cost: the imperative re-run this
            # guard failure forced (attributed to the failing site).
            fallback_start = time.perf_counter() if health is not None \
                else 0.0
            result = self._run_imperative(args, profile=True)
            if health is not None:
                elapsed = time.perf_counter() - fallback_start
                METRICS.observe("fallback.imperative", elapsed)
                health.record_fallback(site, elapsed, kind=kind)
            return result
        self._inc("graph_runs")
        if health is not None:
            health.record_graph_run()
        return compiled.repack_outputs(flat)

    def _run_coexec(self, plan, args, health):
        """Dispatch one call through the co-execution plan.

        The plan runs symbolic fragments and imperative gaps in
        statement order, refining itself when a fragment turns out
        unconvertible.  Two exits abandon it: a boundary mismatch
        (re-run the whole function imperatively — correctness first)
        and refinement degenerating to an all-gap schedule (no partial
        win left; classic imperative-only).
        """
        self._inc("coexec_runs")
        COUNTERS.inc("dispatch.coexec_runs")
        try:
            result, frag_runs, alive = plan.run(args)
        except coexec_mod.BoundaryMismatch as exc:
            # This call is re-counted as an imperative run, not a
            # co-executed one, so counter conservation holds:
            # calls == graph_runs + imperative_runs + coexec_runs.
            self._inc("coexec_runs", -1)
            COUNTERS.inc("coexec.boundary_fallbacks")
            self._coexec_plan = None
            plan.invalidate()
            self.imperative_only = True
            self.not_convertible_reason = \
                "co-execution boundary mismatch: %s" % exc
            if TRACER.level:
                TRACER.instant("fallback", self.__name__,
                               reason="coexec_boundary", detail=str(exc))
                reqtrace.flag("fallback")
            else:
                reqtrace.note("fallback", self.__name__, flag="fallback",
                              reason="coexec_boundary")
            if health is not None:
                health.record_imperative_only()
                health.record_imperative_run()
            return self._run_imperative(args, profile=False)
        if frag_runs:
            self._inc("coexec_fragment_runs", frag_runs)
        if health is not None:
            health.record_coexec_run(frag_runs, plan.converted_ratio)
        if not alive:
            self._coexec_plan = None
            plan.invalidate()
            self.imperative_only = True
            if health is not None:
                health.record_imperative_only()
        return result

    def _background_regenerate(self, signature):
        """Regenerate off the request path (recompile_workers > 0).

        Runs on the shared daemon pool while callers are served by the
        imperative fallback; the regenerated artifact is published with
        one write-locked pointer swap.  The signature's single-flight
        ticket — claimed by the failure that scheduled this job — is
        released only here, so no caller duplicates the compile while
        it is in flight.
        """
        try:
            with self._generate_lock:
                compiled = self._generate(signature)
            if compiled is not None:
                entry = CacheEntry(compiled)
                self.cache.max_entries = self.config.graph_cache_entries
                with self._artifact_lock.write():
                    self.cache.store(signature, entry)
                self._inc("graphs_generated")
                self._publish_disk(signature, compiled)
        finally:
            self._tickets.release(signature)

    @property
    def recompiles_in_flight(self):
        """Signatures whose compile/regeneration is currently owned."""
        return len(self._tickets)

    def _relax(self, failure):
        site = failure.site
        if isinstance(site, tuple) and len(site) == 2:
            kind, prof_site = site
            with self._dirty_lock:
                self._dirty_sites.add(prof_site)
            if kind in ("branch", "loop"):
                self.profiler.force_dynamic(prof_site)
            elif kind in ("attr", "subscr"):
                self.profiler.relax_attr_spec(prof_site, failure.observed)

    def _run_imperative(self, args, profile):
        self._inc("imperative_runs")
        if self.optimizer is not None:
            return self._imperative_training_step(args, profile)
        if profile:
            return self.profiler.profile_call(self.func, list(args))
        return self.func(*args)

    def _imperative_training_step(self, args, profile):
        with GradientTape() as tape:
            if profile:
                loss = self.profiler.profile_call(self.func, list(args))
            else:
                loss = self.func(*args)
        target = loss[0] if isinstance(loss, (tuple, list)) else loss
        variables = list({id(v): v for v, _ in tape._var_reads}.values())
        grads = tape.gradient(target, variables)
        pairs = [(g, v) for g, v in zip(grads, variables) if g is not None]
        self.optimizer.apply_gradients(pairs)
        return loss

    # -- introspection -------------------------------------------------------------

    def cache_stats(self):
        stats = dict(self.stats)
        stats.update(self.cache.stats())
        plan = self._coexec_plan
        if plan is not None:
            stats["coexec"] = plan.artifact().stats()
        return stats

    @property
    def coexec_plan(self):
        """The active co-execution plan, or None (introspection)."""
        return self._coexec_plan

    def __repr__(self):
        if self.imperative_only:
            mode = "imperative-only"
        elif self._coexec_plan is not None:
            mode = "co-executed"
        else:
            mode = "speculative"
        return "JanusFunction(%s, %s)" % (self.__name__, mode)

    def __get__(self, instance, owner):
        if instance is None:
            return self
        return _BoundJanusFunction(self, instance)


class _BoundJanusFunction:
    """Descriptor support: ``@janus.function`` on methods."""

    def __init__(self, jf, instance):
        self._jf = jf
        self._instance = instance

    def __call__(self, *args):
        return self._jf(self._instance, *args)

    def __getattr__(self, name):
        return getattr(self._jf, name)


def _failure_site(failure):
    """``(site, assumption kind)`` behind an AssumptionFailed payload.

    Guard closures raise with ``site=(kind, profiler_site)`` when the
    node carries a profiler site, else with the debug-name string; the
    health model keys on the profiler site so failures, relaxations,
    and fragment reuse all land on the same row.
    """
    site = failure.site
    if isinstance(site, tuple) and len(site) == 2:
        kind, prof_site = site
        return prof_site, kind
    return site, None


def _ensure_tensor(value):
    """Numpy/scalar arguments become eager tensors (TF-Eager semantics)."""
    import numpy as np
    from ..imperative.eager import Tensor
    from ..tensor import TensorValue
    if isinstance(value, (np.ndarray, np.generic)):
        return Tensor(TensorValue.of(np.asarray(value)))
    return value


def function(func=None, *, optimizer=None, config=None):
    """Decorate an imperative DL program for speculative graph execution.

    Usage::

        @janus.function
        def predict(x): ...

        @janus.function(optimizer=sgd)
        def train_step(x, y):
            ...
            return loss
    """
    if func is None:
        return lambda f: JanusFunction(f, optimizer=optimizer,
                                       config=config)
    return JanusFunction(func, optimizer=optimizer, config=config)

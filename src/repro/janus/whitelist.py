"""External-function whitelist (paper section 4.3.1).

JANUS converts calls to *external* functions — framework-provided ops and
common Python builtins — into graph operations using prior knowledge of
their behaviour.  Here the registry maps a Python callable to a handler
invoked by the graph generator with the (symbolic) call arguments; most
framework functions are their own handler because the op API dispatches
through the active graph-building context.

The paper prohibits modifying whitelisted functions; we inherit that
assumption (module-level rebinding of e.g. ``repro.matmul`` between
profiling and graph execution is undefined behaviour).
"""

import builtins
import math

from ..ops import api

_WHITELIST = {}
_NAMES = {}


def register(func, handler=None, name=None):
    """Whitelist ``func``; ``handler`` defaults to the function itself."""
    _WHITELIST[func] = handler if handler is not None else func
    _NAMES[func] = name or getattr(func, "__qualname__", repr(func))
    return func


def is_whitelisted(func):
    target = getattr(func, "__func__", func)
    return target in _WHITELIST


def handler_for(func):
    target = getattr(func, "__func__", func)
    return _WHITELIST.get(target)


def whitelisted_names():
    """Human-readable list (documentation / Table 4 coverage bench)."""
    return sorted(_NAMES.values())


# -- framework-provided functions: the whole op API --------------------------------

for _name in dir(api):
    _fn = getattr(api, _name)
    if callable(_fn) and not _name.startswith("_"):
        register(_fn, name="repro." + _name)


# -- Variable methods ---------------------------------------------------------------

def _register_variable_methods():
    from ..imperative.variable import Variable
    from ..ops.dispatch import current_context

    def assign_handler(var_handle, value):
        # Reached with the bound Variable recovered by the generator.
        ctx = current_context()
        return ctx.assign_variable(var_handle, value)

    register(Variable.assign, assign_handler, name="Variable.assign")


_register_variable_methods()


# -- Python builtins ------------------------------------------------------------------
# Handlers for builtins that have graph representations.  ``len``,
# ``range``, ``enumerate`` and friends are intercepted *structurally* by
# the graph generator (they shape control flow); the entries here simply
# mark them as known-external so callee profiling skips them.

register(builtins.print, api.print_tensor, name="print")
register(builtins.abs, api.abs, name="abs")
register(builtins.len, None, name="len")
register(builtins.range, None, name="range")
register(builtins.enumerate, None, name="enumerate")
register(builtins.zip, None, name="zip")
register(builtins.float, None, name="float")
register(builtins.int, None, name="int")
register(builtins.bool, None, name="bool")
register(builtins.min, None, name="min")
register(builtins.max, None, name="max")
register(builtins.sum, None, name="sum")
register(builtins.isinstance, None, name="isinstance")
register(builtins.list, None, name="list")
register(builtins.tuple, None, name="tuple")
register(builtins.reversed, None, name="reversed")

#: Builtins the generator expands structurally instead of via a handler.
STRUCTURAL_BUILTINS = {
    builtins.len: "len", builtins.range: "range",
    builtins.enumerate: "enumerate", builtins.zip: "zip",
    builtins.float: "float", builtins.int: "int", builtins.bool: "bool",
    builtins.min: "min", builtins.max: "max", builtins.sum: "sum",
    builtins.isinstance: "isinstance", builtins.list: "list",
    builtins.tuple: "tuple", builtins.reversed: "reversed",
}

# -- math module (operates on build-time constants) ------------------------------------

for _mname in ("sqrt", "exp", "log", "floor", "ceil", "pow", "sin", "cos"):
    register(getattr(math, _mname), None, name="math." + _mname)

MATH_CONST_FUNCS = {getattr(math, n) for n in
                    ("sqrt", "exp", "log", "floor", "ceil", "pow",
                     "sin", "cos")}

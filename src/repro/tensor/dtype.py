"""Data types for tensors.

A small fixed dtype system layered over numpy dtypes.  Graph operations
require operands with *fixed* types (paper section 4.2.2), so every symbolic
node carries one of these DType instances, and the type-inference machinery
in ``repro.janus.typeinfer`` propagates them.
"""

import numpy as np


class DType:
    """A tensor element type.

    Instances are interned: ``DType.of('float32') is float32``.
    """

    _interned = {}

    def __init__(self, name, np_dtype, is_floating, is_integer, is_bool):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.is_floating = is_floating
        self.is_integer = is_integer
        self.is_bool = is_bool
        DType._interned[name] = self

    @property
    def is_numeric(self):
        return self.is_floating or self.is_integer

    @classmethod
    def of(cls, value):
        """Resolve a DType from a name, numpy dtype, or DType."""
        if isinstance(value, DType):
            return value
        if isinstance(value, str) and value in cls._interned:
            return cls._interned[value]
        np_dt = np.dtype(value)
        for dt in cls._interned.values():
            if dt.np_dtype == np_dt:
                return dt
        raise KeyError("no repro dtype for %r" % (value,))

    def __repr__(self):
        return "dtype(%s)" % self.name

    def __reduce__(self):
        return (DType.of, (self.name,))


float32 = DType("float32", np.float32, True, False, False)
float64 = DType("float64", np.float64, True, False, False)
int32 = DType("int32", np.int32, False, True, False)
int64 = DType("int64", np.int64, False, True, False)
bool_ = DType("bool", np.bool_, False, False, True)

ALL_DTYPES = (float32, float64, int32, int64, bool_)

#: Default dtype for Python floats and float lists.
default_float = float32
#: Default dtype for Python ints and int lists.
default_int = int64


def result_dtype(*dtypes):
    """Numpy-style type promotion restricted to our dtype set."""
    np_result = np.result_type(*[d.np_dtype for d in dtypes])
    return DType.of(np_result)


def from_python_scalar(value):
    """DType a bare Python scalar would take when converted to a tensor."""
    if isinstance(value, bool):
        return bool_
    if isinstance(value, int):
        return default_int
    if isinstance(value, float):
        return default_float
    raise TypeError("not a python scalar: %r" % (value,))

"""Tensor substrate: dtypes, partially-known shapes, and concrete values."""

from .dtype import (DType, float32, float64, int32, int64, bool_,
                    ALL_DTYPES, result_dtype, from_python_scalar)
from .shape import Shape, broadcast_shapes
from .tensor_value import (TensorValue, PyRef, is_numeric_pyvalue,
                           set_write_barrier, write_barrier_enabled)

__all__ = [
    "DType", "float32", "float64", "int32", "int64", "bool_", "ALL_DTYPES",
    "result_dtype", "from_python_scalar",
    "Shape", "broadcast_shapes",
    "TensorValue", "PyRef", "is_numeric_pyvalue",
    "set_write_barrier", "write_barrier_enabled",
]

"""Tensor shapes with partially-known dimensions.

The specialization lattice of paper figure 4 relaxes a concrete shape such
as ``(4, 8)`` to a partial shape ``(?, 8)`` when observations disagree on a
dimension, and finally to a fully unknown shape.  ``Shape`` models all three
levels: every dimension is either an ``int`` or ``None`` (printed ``?``),
and a shape of unknown *rank* is ``Shape.unknown()``.
"""

from ..errors import ShapeError


class Shape:
    """An immutable, possibly partially-known tensor shape."""

    __slots__ = ("dims", "_rank_known")

    def __init__(self, dims):
        """Create a shape from an iterable of ``int`` or ``None`` dims.

        Pass ``dims=None`` for a shape of unknown rank (prefer the
        ``Shape.unknown()`` constructor for readability).
        """
        if dims is None:
            self.dims = None
            self._rank_known = False
            return
        clean = []
        for d in dims:
            if d is None:
                clean.append(None)
            else:
                d = int(d)
                if d < 0:
                    raise ShapeError("negative dimension %d" % d)
                clean.append(d)
        self.dims = tuple(clean)
        self._rank_known = True

    # -- constructors ----------------------------------------------------

    @classmethod
    def unknown(cls):
        """A shape whose rank is not even known."""
        return cls(None)

    @classmethod
    def scalar(cls):
        return cls(())

    @classmethod
    def of(cls, value):
        """Coerce a Shape, tuple/list of dims, or None into a Shape."""
        if isinstance(value, Shape):
            return value
        return cls(value)

    # -- queries ----------------------------------------------------------

    @property
    def rank(self):
        """Number of dimensions, or None if the rank is unknown."""
        return None if self.dims is None else len(self.dims)

    @property
    def is_fully_known(self):
        return self.dims is not None and all(d is not None for d in self.dims)

    @property
    def num_elements(self):
        """Total element count, or None when any dimension is unknown."""
        if not self.is_fully_known:
            return None
        n = 1
        for d in self.dims:
            n *= d
        return n

    def as_tuple(self):
        """Concrete tuple of ints; raises if any dimension is unknown."""
        if not self.is_fully_known:
            raise ShapeError("shape %s is not fully known" % self)
        return self.dims

    def is_compatible_with(self, other):
        """True if some concrete shape satisfies both this and ``other``.

        Unknown dimensions are wildcards; unknown rank matches anything.
        """
        other = Shape.of(other)
        if self.dims is None or other.dims is None:
            return True
        if len(self.dims) != len(other.dims):
            return False
        for a, b in zip(self.dims, other.dims):
            if a is not None and b is not None and a != b:
                return False
        return True

    def matches_value(self, concrete_dims):
        """True if a concrete numpy shape tuple satisfies this shape."""
        if self.dims is None:
            return True
        if len(concrete_dims) != len(self.dims):
            return False
        for want, got in zip(self.dims, concrete_dims):
            if want is not None and want != got:
                return False
        return True

    # -- lattice operations (paper fig. 4) ---------------------------------

    def merge_with(self, other):
        """Most specific shape compatible with both (lattice meet).

        Raises ShapeError when the shapes are incompatible.
        """
        other = Shape.of(other)
        if self.dims is None:
            return other
        if other.dims is None:
            return self
        if len(self.dims) != len(other.dims):
            raise ShapeError("ranks differ: %s vs %s" % (self, other))
        merged = []
        for a, b in zip(self.dims, other.dims):
            if a is None:
                merged.append(b)
            elif b is None or a == b:
                merged.append(a)
            else:
                raise ShapeError("dims differ: %s vs %s" % (self, other))
        return Shape(merged)

    def relax_against(self, other):
        """Most specific shape *generalizing* both (lattice join).

        This is the relaxation step from paper figure 4: observing (4, 8)
        then (3, 8) yields (?, 8); a rank mismatch yields unknown rank.
        """
        other = Shape.of(other)
        if self.dims is None or other.dims is None:
            return Shape.unknown()
        if len(self.dims) != len(other.dims):
            return Shape.unknown()
        relaxed = [a if (a is not None and a == b) else None
                   for a, b in zip(self.dims, other.dims)]
        return Shape(relaxed)

    # -- dunder -------------------------------------------------------------

    def __iter__(self):
        if self.dims is None:
            raise ShapeError("cannot iterate a shape of unknown rank")
        return iter(self.dims)

    def __len__(self):
        if self.dims is None:
            raise ShapeError("rank unknown")
        return len(self.dims)

    def __getitem__(self, idx):
        if self.dims is None:
            raise ShapeError("rank unknown")
        if isinstance(idx, slice):
            return Shape(self.dims[idx])
        return self.dims[idx]

    def __eq__(self, other):
        if not isinstance(other, (Shape, tuple, list, type(None))):
            return NotImplemented
        other = Shape.of(other) if not isinstance(other, Shape) else other
        return self.dims == other.dims

    def __hash__(self):
        return hash(self.dims)

    def __repr__(self):
        if self.dims is None:
            return "Shape(<unknown rank>)"
        return "Shape(%s)" % (", ".join("?" if d is None else str(d)
                                        for d in self.dims),)


def broadcast_shapes(a, b):
    """Numpy-style broadcast of two (possibly partial) shapes."""
    a, b = Shape.of(a), Shape.of(b)
    if a.dims is None or b.dims is None:
        return Shape.unknown()
    ra, rb = list(a.dims), list(b.dims)
    # Left-pad the shorter shape with 1s.
    while len(ra) < len(rb):
        ra.insert(0, 1)
    while len(rb) < len(ra):
        rb.insert(0, 1)
    out = []
    for da, db in zip(ra, rb):
        if da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        elif da is None or db is None:
            out.append(None)
        elif da == db:
            out.append(da)
        else:
            raise ShapeError("cannot broadcast %s with %s" % (a, b))
    return Shape(out)

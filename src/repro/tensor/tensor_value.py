"""Concrete tensor values.

``TensorValue`` is the runtime payload flowing along dataflow-graph edges
and held by eager tensors: an immutable-by-convention numpy array plus one
of our interned dtypes.  Non-numerical Python values crossing the graph
boundary are carried by ``PyRef`` handles, mirroring the paper's rule of
converting arbitrary objects into scalar tensors holding pointers into the
Python heap (section 4.2.2).
"""

import numpy as np

from . import dtype as dtypes
from .dtype import DType
from .shape import Shape


class TensorValue:
    """A concrete n-dimensional array with a fixed repro dtype."""

    __slots__ = ("array", "dtype")

    def __init__(self, array, dtype=None):
        if isinstance(array, TensorValue):
            dtype = dtype or array.dtype
            array = array.array
        if dtype is not None:
            dtype = DType.of(dtype)
            array = np.asarray(array, dtype=dtype.np_dtype)
        else:
            array = np.asarray(array)
            if array.dtype == np.float64:
                # Match DL-framework convention: python floats are float32.
                if not isinstance(array, np.ndarray) or array.base is None:
                    pass
            dtype = DType.of(array.dtype)
        self.array = array
        self.dtype = dtype

    @classmethod
    def of(cls, value, dtype=None):
        """Coerce scalars, lists, numpy arrays, or TensorValues."""
        if isinstance(value, TensorValue) and dtype is None:
            return value
        if dtype is None and isinstance(value, (bool, int, float)):
            dtype = dtypes.from_python_scalar(value)
        if dtype is None and isinstance(value, (list, tuple)):
            probe = np.asarray(value)
            if probe.dtype == np.float64:
                dtype = dtypes.default_float
            elif probe.dtype == np.int64:
                dtype = dtypes.default_int
        return cls(value, dtype=dtype)

    @property
    def shape(self):
        return Shape(self.array.shape)

    @property
    def ndim(self):
        return self.array.ndim

    @property
    def size(self):
        return self.array.size

    def item(self):
        return self.array.item()

    def numpy(self):
        return self.array

    def astype(self, dtype):
        dtype = DType.of(dtype)
        return TensorValue(self.array.astype(dtype.np_dtype), dtype)

    def copy(self):
        return TensorValue(self.array.copy(), self.dtype)

    def __repr__(self):
        return "TensorValue(dtype=%s, shape=%s)" % (
            self.dtype.name, tuple(self.array.shape))


class PyRef:
    """A graph-crossing handle to an arbitrary Python object.

    The paper converts non-numerical Python values into integer scalar
    tensors holding heap pointers; PyRef is the explicit, safe analogue.
    Identity (``is``) of the wrapped object is what matters.
    """

    __slots__ = ("obj",)

    def __init__(self, obj):
        self.obj = obj

    def __repr__(self):
        return "PyRef(%s at 0x%x)" % (type(self.obj).__name__, id(self.obj))

    def __eq__(self, other):
        return isinstance(other, PyRef) and other.obj is self.obj

    def __hash__(self):
        return id(self.obj)


def is_numeric_pyvalue(value):
    """True when a Python value converts to a numeric tensor (basic rule).

    Scalars, lists of numbers, and numpy arrays become tensors; everything
    else rides as a PyRef (paper section 4.2.2 basic translation rules).
    """
    if isinstance(value, (bool, int, float, np.ndarray, TensorValue)):
        return True
    if isinstance(value, (list, tuple)):
        try:
            arr = np.asarray(value)
        except (ValueError, TypeError):
            return False
        return arr.dtype.kind in "bif"
    return False

"""Concrete tensor values.

``TensorValue`` is the runtime payload flowing along dataflow-graph edges
and held by eager tensors: an immutable-by-convention numpy array plus one
of our interned dtypes.  Non-numerical Python values crossing the graph
boundary are carried by ``PyRef`` handles, mirroring the paper's rule of
converting arbitrary objects into scalar tensors holding pointers into the
Python heap (section 4.2.2).

Write barrier (``docs/compilation.md#write-barrier``): every TensorValue
carries a monotonically increasing ``version`` stamp, bumped by each
sanctioned in-place write (:meth:`TensorValue.inplace_write` — the backend
of eager ``Tensor.assign_/add_/...``).  A value enrolled in a guarded
heap-read memo is *sealed* (:meth:`TensorValue.track`): its numpy buffer
is made read-only, so unsanctioned in-place mutation raises instead of
silently bypassing an assumption guard, and sanctioned writes go through a
copy-on-write step that rebinds ``array`` to a private buffer.  Identity
plus version therefore pins content — the soundness condition that lets
the graph executor extend its identity memo to heap Tensor reads (JANUS
section 4.2's guards must observe every state change before graph reuse).
"""

import numpy as np

from . import dtype as dtypes
from .dtype import DType
from .shape import Shape

#: Process-wide write-barrier switch.  Off restores the pre-barrier
#: behaviour: ``track()`` refuses to seal, so executors never extend
#: their identity memo to tensors and digests never use version tokens.
_WRITE_BARRIER = [True]


def set_write_barrier(enabled):
    """Toggle the global write barrier; returns the previous setting."""
    previous = _WRITE_BARRIER[0]
    _WRITE_BARRIER[0] = bool(enabled)
    return previous


def write_barrier_enabled():
    return _WRITE_BARRIER[0]


#: Ownership modes.  UNKNOWN: provenance unclear (may alias a caller's
#: ndarray), in-place writes copy unless the buffer is demonstrably ours.
#: PRIVATE: exclusively owned (post-COW), writes go straight through.
#: SEALED: enrolled in a guarded memo, buffer frozen, writes always COW.
_UNKNOWN, _PRIVATE, _SEALED = 0, 1, 2

_OBS = None


def _obs():
    """Lazy (COUNTERS, TRACER) import — tensor is below observability."""
    global _OBS
    if _OBS is None:
        from ..observability import COUNTERS, TRACER
        _OBS = (COUNTERS, TRACER)
    return _OBS


class TensorValue:
    """A concrete n-dimensional array with a fixed repro dtype."""

    __slots__ = ("array", "dtype", "version", "_mode")

    def __init__(self, array, dtype=None):
        self.version = 0
        self._mode = _UNKNOWN
        if isinstance(array, TensorValue):
            dtype = dtype or array.dtype
            array = array.array
        if dtype is not None:
            dtype = DType.of(dtype)
            array = np.asarray(array, dtype=dtype.np_dtype)
        else:
            array = np.asarray(array)
            if array.dtype == np.float64:
                # Match DL-framework convention: python floats are float32.
                if not isinstance(array, np.ndarray) or array.base is None:
                    pass
            dtype = DType.of(array.dtype)
        self.array = array
        self.dtype = dtype

    @classmethod
    def of(cls, value, dtype=None):
        """Coerce scalars, lists, numpy arrays, or TensorValues."""
        if isinstance(value, TensorValue) and dtype is None:
            return value
        if dtype is None and isinstance(value, (bool, int, float)):
            dtype = dtypes.from_python_scalar(value)
        if dtype is None and isinstance(value, (list, tuple)):
            probe = np.asarray(value)
            if probe.dtype == np.float64:
                dtype = dtypes.default_float
            elif probe.dtype == np.int64:
                dtype = dtypes.default_int
        return cls(value, dtype=dtype)

    @property
    def shape(self):
        return Shape(self.array.shape)

    @property
    def ndim(self):
        return self.array.ndim

    @property
    def size(self):
        return self.array.size

    def item(self):
        return self.array.item()

    def numpy(self):
        return self.array

    def astype(self, dtype):
        dtype = DType.of(dtype)
        return TensorValue(self.array.astype(dtype.np_dtype), dtype)

    def copy(self):
        return TensorValue(self.array.copy(), self.dtype).mark_private()

    # -- write barrier -----------------------------------------------------

    @property
    def tracked(self):
        """Whether this value is sealed behind the write barrier."""
        return self._mode == _SEALED

    def mark_private(self):
        """Claim exclusive buffer ownership (fresh, unaliased arrays)."""
        if self._mode == _UNKNOWN:
            self._mode = _PRIVATE
        return self

    def track(self):
        """Seal the buffer for enrollment in a guarded identity memo.

        Returns True when ``id(self)`` plus ``version`` pin the content
        from here on: the buffer is frozen (unsanctioned in-place writes
        raise ``ValueError: assignment destination is read-only``) and
        every sanctioned write copies first.  Refuses — returning False,
        leaving the value unmemoizable — when the barrier is globally
        off or when the array is a view (a frozen view still sees writes
        through its writable base, so freezing it would pin nothing).
        """
        if self._mode == _SEALED:
            return True
        if not _WRITE_BARRIER[0]:
            return False
        arr = self.array
        if arr.base is not None or not arr.flags.owndata:
            return False
        try:
            arr.flags.writeable = False
        except ValueError:
            return False
        self._mode = _SEALED
        return True

    def inplace_write(self, write):
        """Apply an in-place mutation through the barrier.

        *write* receives a writable ndarray to mutate.  Sealed,
        read-only, or possibly-aliased buffers are copied first
        (copy-on-write: concurrent holders of the old buffer — memo
        entries, previously read tensors — keep the content they
        validated), then the version stamp is bumped so stale memo
        entries and version-token digests miss.
        """
        arr = self.array
        if self._mode == _SEALED or arr.base is not None \
                or not arr.flags.owndata or not arr.flags.writeable:
            arr = arr.copy()
            self.array = arr
            self._mode = _PRIVATE
            counters, tracer = _obs()
            if tracer.level:
                counters.inc("tensor.cow_copies")
        write(arr)
        self.version += 1
        return self

    def __reduce__(self):
        # Version stamps and seal state are per-process write-barrier
        # bookkeeping; a deserialized value starts life as a fresh,
        # untracked tensor in the loading process.
        return (TensorValue, (self.array, self.dtype))

    def __repr__(self):
        return "TensorValue(dtype=%s, shape=%s)" % (
            self.dtype.name, tuple(self.array.shape))


class PyRef:
    """A graph-crossing handle to an arbitrary Python object.

    The paper converts non-numerical Python values into integer scalar
    tensors holding heap pointers; PyRef is the explicit, safe analogue.
    Identity (``is``) of the wrapped object is what matters.
    """

    __slots__ = ("obj",)

    def __init__(self, obj):
        self.obj = obj

    def __repr__(self):
        return "PyRef(%s at 0x%x)" % (type(self.obj).__name__, id(self.obj))

    def __eq__(self, other):
        return isinstance(other, PyRef) and other.obj is self.obj

    def __hash__(self):
        return id(self.obj)


def is_numeric_pyvalue(value):
    """True when a Python value converts to a numeric tensor (basic rule).

    Scalars, lists of numbers, and numpy arrays become tensors; everything
    else rides as a PyRef (paper section 4.2.2 basic translation rules).
    """
    if isinstance(value, (bool, int, float, np.ndarray, TensorValue)):
        return True
    if isinstance(value, (list, tuple)):
        try:
            arr = np.asarray(value)
        except (ValueError, TypeError):
            return False
        return arr.dtype.kind in "bif"
    return False

"""repro — a from-scratch reproduction of JANUS (NSDI '19).

JANUS transparently converts imperative Python deep-learning programs into
speculatively-specialized symbolic dataflow graphs.  The package layout:

* :mod:`repro.tensor` / :mod:`repro.ops` — numpy-backed tensor and kernel
  substrate with a mode-polymorphic op API,
* :mod:`repro.imperative` — the eager executor (TF-Eager stand-in),
* :mod:`repro.graph` — symbolic graph IR, optimizer, and executor
  (TF-graph stand-in),
* :mod:`repro.janus` — the paper's contribution: profiler, speculative
  graph generator, graph cache, and fallback machinery,
* :mod:`repro.baselines` — the unsafe trace-based converter (defun-like),
* :mod:`repro.nn` / :mod:`repro.models` — layers and the 11 evaluation
  models, :mod:`repro.data` / :mod:`repro.envs` — synthetic datasets and
  RL environments, :mod:`repro.distributed` — simulated multi-GPU cluster.

Typical use::

    import repro as R

    @R.janus.function
    def loss_fn(x, y):
        y_ = 0.5 * x + 1.5
        return (y_ - y) ** 2

The decorated function executes imperatively while being profiled, then
runs as an optimized symbolic graph whenever its context assumptions hold.
"""

from . import tensor  # noqa: F401
from . import ops  # noqa: F401
from . import imperative  # noqa: F401  (installs the eager context)

from .tensor import (DType, Shape, TensorValue, float32, float64, int32,
                     int64, bool_)
from .imperative import Tensor, Variable, GradientTape, constant

# Re-export the whole op API at package level: `R.matmul(...)`.
from .ops.api import *  # noqa: F401,F403
from .ops import api as _api

__all__ = ["DType", "Shape", "TensorValue", "float32", "float64",
           "int32", "int64", "bool_",
           "Tensor", "Variable", "GradientTape", "constant"]
__all__ += [name for name in dir(_api) if not name.startswith("_")]

__version__ = "0.1.0"


def __getattr__(name):
    # Lazy subpackage access (repro.janus, repro.graph, ...) keeps import
    # time low and avoids circular imports during bootstrap.
    if name in ("graph", "janus", "nn", "models", "data", "envs",
                "distributed", "baselines", "observability"):
        import importlib
        module = importlib.import_module("." + name, __name__)
        globals()[name] = module
        return module
    raise AttributeError("module %r has no attribute %r" % (__name__, name))

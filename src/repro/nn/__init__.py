"""High-level neural-network library (Keras-style, mode-polymorphic)."""

from . import init
from . import losses
from .module import Module
from .layers import (Dense, Conv2D, Conv2DTranspose, BatchNorm,
                     LayerNorm, Embedding, Dropout, Flatten, MaxPool,
                     AvgPool, Sequential, set_training)
from .rnn import LSTMCell, GRUCell, RNNCell
from .optim import Optimizer, SGD, Momentum, RMSProp, Adam

__all__ = [
    "init", "losses", "Module",
    "Dense", "Conv2D", "Conv2DTranspose", "BatchNorm",
    "LayerNorm", "Embedding",
    "Dropout", "Flatten", "MaxPool", "AvgPool", "Sequential",
    "set_training",
    "LSTMCell", "GRUCell", "RNNCell",
    "Optimizer", "SGD", "Momentum", "RMSProp", "Adam",
]

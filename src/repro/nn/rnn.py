"""Recurrent cells (LSTM / GRU / vanilla RNN).

Cells are single-step functions ``(state, x) -> new_state`` so models can
drive them with native Python loops — the imperative style of paper
figure 1 that JANUS unrolls or converts to dynamic loop operations.
"""

from ..ops import api
from . import init
from .module import Module


class LSTMCell(Module):
    """A standard LSTM cell; state is the (h, c) pair."""

    def __init__(self, input_dim, hidden_dim, forget_bias=1.0, name=None):
        super().__init__(name)
        self.hidden_dim = hidden_dim
        self.kernel = self.add_variable(
            "kernel",
            init.glorot_uniform((input_dim + hidden_dim, 4 * hidden_dim)))
        self.bias = self.add_variable("bias",
                                      init.zeros((4 * hidden_dim,)))
        self.forget_bias = forget_bias

    def call(self, state, x):
        h, c = state
        z = api.add(api.matmul(api.concat([x, h], axis=1), self.kernel),
                    self.bias)
        i, f, g, o = api.split(z, 4, axis=1)
        f = api.add(f, self.forget_bias)
        new_c = api.add(api.mul(api.sigmoid(f), c),
                        api.mul(api.sigmoid(i), api.tanh(g)))
        new_h = api.mul(api.sigmoid(o), api.tanh(new_c))
        return (new_h, new_c)

    def zero_state(self, batch_size):
        return (api.zeros((batch_size, self.hidden_dim)),
                api.zeros((batch_size, self.hidden_dim)))


class GRUCell(Module):
    """A gated recurrent unit; state is the hidden vector."""

    def __init__(self, input_dim, hidden_dim, name=None):
        super().__init__(name)
        self.hidden_dim = hidden_dim
        self.gate_kernel = self.add_variable(
            "gate_kernel",
            init.glorot_uniform((input_dim + hidden_dim, 2 * hidden_dim)))
        self.gate_bias = self.add_variable(
            "gate_bias", init.ones((2 * hidden_dim,)))
        self.cand_kernel = self.add_variable(
            "cand_kernel",
            init.glorot_uniform((input_dim + hidden_dim, hidden_dim)))
        self.cand_bias = self.add_variable(
            "cand_bias", init.zeros((hidden_dim,)))

    def call(self, state, x):
        h = state
        gates = api.sigmoid(api.add(
            api.matmul(api.concat([x, h], axis=1), self.gate_kernel),
            self.gate_bias))
        r, u = api.split(gates, 2, axis=1)
        cand = api.tanh(api.add(
            api.matmul(api.concat([x, api.mul(r, h)], axis=1),
                       self.cand_kernel),
            self.cand_bias))
        return api.add(api.mul(u, h), api.mul(api.sub(1.0, u), cand))

    def zero_state(self, batch_size):
        return api.zeros((batch_size, self.hidden_dim))


class RNNCell(Module):
    """Vanilla tanh recurrence (used by TreeRNN-style models)."""

    def __init__(self, input_dim, hidden_dim, name=None):
        super().__init__(name)
        self.hidden_dim = hidden_dim
        self.kernel = self.add_variable(
            "kernel", init.glorot_uniform((input_dim + hidden_dim,
                                           hidden_dim)))
        self.bias = self.add_variable("bias", init.zeros((hidden_dim,)))

    def call(self, state, x):
        z = api.add(api.matmul(api.concat([x, state], axis=1), self.kernel),
                    self.bias)
        return api.tanh(z)

    def zero_state(self, batch_size):
        return api.zeros((batch_size, self.hidden_dim))

"""Neural-network layers.

Every layer's ``call`` is plain imperative Python over the op API, so the
same code runs eagerly *and* is inlined by the JANUS graph generator.
``BatchNorm`` deliberately branches on ``self.training`` — the dynamic
control flow that makes trace-based converters silently wrong on
ResNet-style models (paper section 6.2).
"""

from ..ops import api
from . import init
from .module import Module


class Dense(Module):
    """Fully-connected layer: ``activation(x @ W + b)``."""

    def __init__(self, in_features, out_features, activation=None,
                 use_bias=True, name=None, initializer=init.glorot_uniform):
        super().__init__(name)
        self.kernel = self.add_variable(
            "kernel", initializer((in_features, out_features)))
        self.bias = self.add_variable(
            "bias", init.zeros((out_features,))) if use_bias else None
        self.activation = activation
        self.use_bias = use_bias

    def call(self, x):
        y = api.matmul(x, self.kernel)
        if self.use_bias:
            y = api.add(y, self.bias)
        if self.activation is not None:
            y = self.activation(y)
        return y


class Conv2D(Module):
    """2-D convolution over NHWC activations with HWIO filters."""

    def __init__(self, in_channels, out_channels, kernel_size=3, strides=1,
                 padding="SAME", activation=None, use_bias=True, name=None,
                 initializer=init.he_normal):
        super().__init__(name)
        k = kernel_size if isinstance(kernel_size, tuple) \
            else (kernel_size, kernel_size)
        self.filters = self.add_variable(
            "filters", initializer(k + (in_channels, out_channels)))
        self.bias = self.add_variable(
            "bias", init.zeros((out_channels,))) if use_bias else None
        self.strides = strides
        self.padding = padding
        self.activation = activation
        self.use_bias = use_bias

    def call(self, x):
        y = api.conv2d(x, self.filters, strides=self.strides,
                       padding=self.padding)
        if self.use_bias:
            y = api.add(y, self.bias)
        if self.activation is not None:
            y = self.activation(y)
        return y


class Conv2DTranspose(Module):
    """Transposed convolution (GAN generators, pix2pix decoder)."""

    def __init__(self, in_channels, out_channels, output_hw, kernel_size=3,
                 strides=2, padding="SAME", activation=None, use_bias=True,
                 name=None, initializer=init.he_normal):
        super().__init__(name)
        k = kernel_size if isinstance(kernel_size, tuple) \
            else (kernel_size, kernel_size)
        # HWIO where I is this layer's *output* channel count.
        self.filters = self.add_variable(
            "filters", initializer(k + (out_channels, in_channels)))
        self.bias = self.add_variable(
            "bias", init.zeros((out_channels,))) if use_bias else None
        self.output_shape = (output_hw[0], output_hw[1], out_channels)
        self.strides = strides
        self.padding = padding
        self.activation = activation
        self.use_bias = use_bias

    def call(self, x):
        y = api.conv2d_transpose(x, self.filters, self.output_shape,
                                 strides=self.strides, padding=self.padding)
        if self.use_bias:
            y = api.add(y, self.bias)
        if self.activation is not None:
            y = self.activation(y)
        return y


class BatchNorm(Module):
    """Batch normalization with a train/eval dynamic branch.

    During training, statistics come from the batch and the moving
    averages are updated (global state mutation); during evaluation the
    moving averages are used.  A trace-based converter freezes whichever
    mode it happened to trace — the paper's headline incorrectness case.
    """

    def __init__(self, num_features, momentum=0.9, epsilon=1e-5,
                 axes=(0,), name=None):
        super().__init__(name)
        self.gamma = self.add_variable("gamma", init.ones((num_features,)))
        self.beta = self.add_variable("beta", init.zeros((num_features,)))
        self.moving_mean = self.add_variable(
            "moving_mean", init.zeros((num_features,)), trainable=False)
        self.moving_var = self.add_variable(
            "moving_var", init.ones((num_features,)), trainable=False)
        self.momentum = momentum
        self.epsilon = epsilon
        self.axes = axes
        self.training = True

    def call(self, x):
        if self.training:
            mean = api.reduce_mean(x, axis=self.axes)
            centered = api.sub(x, mean)
            var = api.reduce_mean(api.square(centered), axis=self.axes)
            m = self.momentum
            self.moving_mean.assign(
                api.add(api.mul(self.moving_mean, m),
                        api.mul(api.stop_gradient(mean), 1.0 - m)))
            self.moving_var.assign(
                api.add(api.mul(self.moving_var, m),
                        api.mul(api.stop_gradient(var), 1.0 - m)))
        else:
            mean = self.moving_mean
            var = self.moving_var
            centered = api.sub(x, mean)
        inv = api.div(1.0, api.sqrt(api.add(var, self.epsilon)))
        return api.add(api.mul(api.mul(centered, inv), self.gamma),
                       self.beta)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, num_features, epsilon=1e-5, name=None):
        super().__init__(name)
        self.gamma = self.add_variable("gamma", init.ones((num_features,)))
        self.beta = self.add_variable("beta", init.zeros((num_features,)))
        self.epsilon = epsilon

    def call(self, x):
        return api.layer_norm(x, self.gamma, self.beta,
                              epsilon=self.epsilon)


class Embedding(Module):
    """Token-id to dense-vector lookup table."""

    def __init__(self, vocab_size, dim, name=None):
        super().__init__(name)
        self.table = self.add_variable(
            "table", init.random_uniform((vocab_size, dim), -0.1, 0.1))

    def call(self, ids):
        return api.gather(self.table, ids)


class Dropout(Module):
    """Inverted dropout, active only while ``self.training``."""

    def __init__(self, rate=0.5, name=None):
        super().__init__(name)
        self.rate = rate
        self.training = True

    def call(self, x):
        if self.training:
            return api.dropout(x, self.rate)
        return x


class Flatten(Module):
    def call(self, x):
        tail = 1
        for d in x.shape[1:]:
            tail = tail * d
        return api.reshape(x, (-1, tail))


class MaxPool(Module):
    def __init__(self, ksize=2, strides=2, padding="VALID", name=None):
        super().__init__(name)
        self.ksize = ksize
        self.strides = strides
        self.padding = padding

    def call(self, x):
        return api.max_pool(x, self.ksize, self.strides, self.padding)


class AvgPool(Module):
    def __init__(self, ksize=2, strides=2, padding="VALID", name=None):
        super().__init__(name)
        self.ksize = ksize
        self.strides = strides
        self.padding = padding

    def call(self, x):
        return api.avg_pool(x, self.ksize, self.strides, self.padding)


class Sequential(Module):
    """Composes layers in order."""

    def __init__(self, layers, name=None):
        super().__init__(name)
        self.layers = list(layers)

    def call(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def set_training(self, training):
        set_training(self, training)
        return self


def set_training(module, training):
    """Flip every ``training`` flag reachable from a module tree."""
    seen = set()

    def walk(m):
        if id(m) in seen or not isinstance(m, Module):
            return
        seen.add(id(m))
        if hasattr(m, "training"):
            m.training = training
        for value in m.__dict__.values():
            if isinstance(value, Module):
                walk(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    walk(item)
            elif isinstance(value, dict):
                for item in value.values():
                    walk(item)

    walk(module)
    return module

"""Loss functions built on the op API (mode-polymorphic)."""

from ..ops import api


def softmax_cross_entropy(logits, labels):
    """Mean cross entropy over a batch; ``labels`` are integer ids."""
    return api.reduce_mean(api.softmax_cross_entropy(logits, labels))


def sigmoid_cross_entropy(logits, targets):
    """Mean binary cross entropy with logits."""
    return api.reduce_mean(api.sigmoid_cross_entropy(logits, targets))


def mean_squared_error(pred, target):
    return api.reduce_mean(api.square(api.sub(pred, target)))


def mean_absolute_error(pred, target):
    return api.reduce_mean(api.abs(api.sub(pred, target)))


def accuracy(logits, labels):
    """Fraction of argmax predictions matching integer labels."""
    pred = api.argmax(logits, axis=1)
    hits = api.cast(api.equal(pred, api.cast(labels, "int64")), "float32")
    return api.reduce_mean(hits)

"""Optimizers, written once for both execution modes.

``apply_gradients`` manipulates Variables only through ``api.assign`` and
arithmetic ops, so the same optimizer instance updates parameters eagerly
during profiling/fallback and emits deferred ``var_assign`` nodes when
JANUS appends the training step to a generated graph (paper section 3.1:
"operations for ... model parameter updates are also automatically
inserted").  Slot variables (momentum, Adam moments) are ordinary
Variables shared across modes.
"""

import numpy as np

from ..imperative.variable import Variable
from ..ops import api


class Optimizer:
    """Base class: slot management plus the apply loop."""

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self._slots = {}

    def slot(self, variable, slot_name):
        """Fetch-or-create a per-variable state Variable."""
        key = (variable.uid, slot_name)
        found = self._slots.get(key)
        if found is None:
            found = Variable(np.zeros(variable.shape.as_tuple(),
                                      variable.dtype.np_dtype),
                             name="%s/%s/%s" % (self.name, variable.name,
                                                slot_name),
                             trainable=False)
            self._slots[key] = found
        return found

    def apply_gradients(self, grads_and_vars):
        """Apply one update step; ``grads_and_vars`` is (grad, var) pairs."""
        for grad, variable in grads_and_vars:
            if grad is None:
                continue
            self._apply_one(grad, variable)

    def _apply_one(self, grad, variable):
        raise NotImplementedError

    def minimize(self, loss_fn, variables=None):
        """Convenience eager path: tape the loss and step (imperative)."""
        from ..imperative.tape import GradientTape
        with GradientTape() as tape:
            loss = loss_fn()
        if variables is None:
            variables = list({id(v): v
                              for v, _ in tape._var_reads}.values())
        grads = tape.gradient(loss, variables)
        self.apply_gradients([(g, v) for g, v in zip(grads, variables)
                              if g is not None])
        return loss


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def __init__(self, learning_rate=0.01, name=None):
        super().__init__(name)
        self.learning_rate = learning_rate

    def _apply_one(self, grad, variable):
        new_value = api.sub(api.read(variable),
                            api.mul(grad, self.learning_rate))
        api.assign(variable, new_value)


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate=0.01, momentum=0.9, name=None):
        super().__init__(name)
        self.learning_rate = learning_rate
        self.momentum = momentum

    def _apply_one(self, grad, variable):
        velocity = self.slot(variable, "velocity")
        new_v = api.add(api.mul(api.read(velocity), self.momentum), grad)
        api.assign(velocity, new_v)
        api.assign(variable, api.sub(api.read(variable),
                                     api.mul(new_v, self.learning_rate)))


class RMSProp(Optimizer):
    def __init__(self, learning_rate=0.001, decay=0.9, epsilon=1e-7,
                 name=None):
        super().__init__(name)
        self.learning_rate = learning_rate
        self.decay = decay
        self.epsilon = epsilon

    def _apply_one(self, grad, variable):
        ms = self.slot(variable, "ms")
        new_ms = api.add(api.mul(api.read(ms), self.decay),
                         api.mul(api.square(grad), 1.0 - self.decay))
        api.assign(ms, new_ms)
        update = api.div(api.mul(grad, self.learning_rate),
                         api.add(api.sqrt(new_ms), self.epsilon))
        api.assign(variable, api.sub(api.read(variable), update))


class Adam(Optimizer):
    """Adam with the step-count bias correction held in a scalar slot."""

    def __init__(self, learning_rate=0.001, beta1=0.9, beta2=0.999,
                 epsilon=1e-7, name=None):
        super().__init__(name)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = Variable(np.float32(0.0), name="%s/step" % self.name,
                              trainable=False)
        self._step_bumped_in_apply = False

    def apply_gradients(self, grads_and_vars):
        pairs = [(g, v) for g, v in grads_and_vars if g is not None]
        if not pairs:
            return
        api.assign(self._step, api.add(api.read(self._step), 1.0))
        for grad, variable in pairs:
            self._apply_one(grad, variable)

    def _apply_one(self, grad, variable):
        m = self.slot(variable, "m")
        v = self.slot(variable, "v")
        t = api.read(self._step)
        new_m = api.add(api.mul(api.read(m), self.beta1),
                        api.mul(grad, 1.0 - self.beta1))
        new_v = api.add(api.mul(api.read(v), self.beta2),
                        api.mul(api.square(grad), 1.0 - self.beta2))
        api.assign(m, new_m)
        api.assign(v, new_v)
        m_hat = api.div(new_m, api.sub(1.0, api.pow(self.beta1, t)))
        v_hat = api.div(new_v, api.sub(1.0, api.pow(self.beta2, t)))
        update = api.div(api.mul(m_hat, self.learning_rate),
                         api.add(api.sqrt(v_hat), self.epsilon))
        api.assign(variable, api.sub(api.read(variable), update))

"""Weight initializers (numpy-backed, deterministic via a module rng)."""

import numpy as np

_rng = np.random.default_rng(1234)


def seed(value):
    """Reseed initializer randomness (tests / reproducible benchmarks)."""
    global _rng
    _rng = np.random.default_rng(value)


def zeros(shape):
    return np.zeros(shape, np.float32)


def ones(shape):
    return np.ones(shape, np.float32)


def constant(shape, value):
    return np.full(shape, value, np.float32)


def random_normal(shape, stddev=0.05):
    return (_rng.normal(0.0, stddev, size=shape)).astype(np.float32)


def random_uniform(shape, minval=-0.05, maxval=0.05):
    return _rng.uniform(minval, maxval, size=shape).astype(np.float32)


def _fans(shape):
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # conv kernels HWIO: receptive field times channels.
    receptive = 1
    for d in shape[:-2]:
        receptive *= d
    return shape[-2] * receptive, shape[-1] * receptive


def glorot_uniform(shape):
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng.uniform(-limit, limit, size=shape).astype(np.float32)


def he_normal(shape):
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return _rng.normal(0.0, std, size=shape).astype(np.float32)


def orthogonal(shape, gain=1.0):
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    a = _rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(a)
    q = q[:rows, :cols] if rows <= q.shape[0] else q
    return (gain * q.reshape(shape)).astype(np.float32)

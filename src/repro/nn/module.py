"""Module base class: variable tracking for layers and models."""

from ..imperative.variable import Variable


class Module:
    """Base class for layers and models.

    Variables assigned as attributes (directly, in lists/tuples, or on
    sub-modules) are discovered recursively by :attr:`variables` —
    mirroring the Keras-style high-level API the paper's workloads use.
    """

    def __init__(self, name=None):
        self.name = name or type(self).__name__

    @property
    def variables(self):
        """All Variables reachable from this module, uid-ordered."""
        found = {}
        self._collect(found, set())
        return [found[k] for k in sorted(found)]

    @property
    def trainable_variables(self):
        return [v for v in self.variables if v.trainable]

    def _collect(self, found, seen):
        if id(self) in seen:
            return
        seen.add(id(self))
        for value in self.__dict__.values():
            self._collect_value(value, found, seen)

    @staticmethod
    def _collect_value(value, found, seen):
        if isinstance(value, Variable):
            found[value.uid] = value
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                Module._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                Module._collect_value(item, found, seen)

    def add_variable(self, name, initial_value, trainable=True):
        return Variable(initial_value, name="%s/%s" % (self.name, name),
                        trainable=trainable)

    def __call__(self, *args, **kwargs):
        return self.call(*args, **kwargs)

    def call(self, *args, **kwargs):
        raise NotImplementedError
